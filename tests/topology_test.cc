// net::Topology: the rank→node map of the two-level machine, and the
// hosts-file slot syntax ("host:port xK") that feeds it.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "net/tcp_transport.h"
#include "net/topology.h"

namespace demsort::net {
namespace {

TEST(TopologyTest, FlatAndUniformShapes) {
  Topology flat = Topology::Flat(4);
  EXPECT_EQ(flat.num_pes(), 4);
  EXPECT_EQ(flat.num_nodes(), 4);
  EXPECT_FALSE(flat.hierarchical());
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(flat.node_of(r), r);
    EXPECT_TRUE(flat.is_leader(r));
    EXPECT_EQ(flat.local_rank(r), 0);
  }

  Topology two = Topology::Uniform(8, 2);
  EXPECT_EQ(two.num_nodes(), 4);
  EXPECT_TRUE(two.hierarchical());
  EXPECT_EQ(two.node_of(5), 2);
  EXPECT_EQ(two.leader_of(2), 4);
  EXPECT_EQ(two.local_rank(5), 1);
  EXPECT_TRUE(two.same_node(4, 5));
  EXPECT_FALSE(two.same_node(3, 4));

  // Remainder node: Uniform(7, 2) = {2, 2, 2, 1}.
  Topology ragged = Topology::Uniform(7, 2);
  EXPECT_EQ(ragged.num_nodes(), 4);
  EXPECT_EQ(ragged.node_size(3), 1);
  EXPECT_EQ(ragged.node_of(6), 3);
}

TEST(TopologyTest, UnevenShapeAndConnectionCounts) {
  auto topo = Topology::FromNodeSizes({2, 3, 2});
  ASSERT_TRUE(topo.ok());
  const Topology& t = topo.value();
  EXPECT_EQ(t.num_pes(), 7);
  EXPECT_EQ(t.num_nodes(), 3);
  EXPECT_EQ(t.node_first(1), 2);
  EXPECT_EQ(t.leader_of(1), 2);
  EXPECT_EQ(t.node_of(4), 1);
  EXPECT_EQ(t.local_rank(4), 2);
  EXPECT_EQ(t.leader_of_rank(6), 5);
  EXPECT_EQ(t.ToString(), "{2,3,2}");
  // N*(N-1) directed node channels vs P*(P-1) flat ones — the socket math
  // the hierarchy exists for.
  EXPECT_EQ(t.InterNodeConnections(), 6u);
  EXPECT_EQ(Topology::FlatConnections(t.num_pes()), 42u);

  EXPECT_FALSE(Topology::FromNodeSizes({}).ok());
  EXPECT_FALSE(Topology::FromNodeSizes({2, 0}).ok());
}

TEST(TopologyTest, ParseNodeShape) {
  auto topo = ParseNodeShape("1,3");
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ(topo.value().num_pes(), 4);
  EXPECT_EQ(topo.value().num_nodes(), 2);
  EXPECT_FALSE(ParseNodeShape("").ok());
  EXPECT_FALSE(ParseNodeShape("2,").ok());
  EXPECT_FALSE(ParseNodeShape("2,x").ok());
  EXPECT_FALSE(ParseNodeShape("0,2").ok());
}

// ------------------------------------------------ hosts-file slot counts ----

class HostsFileTest : public ::testing::Test {
 protected:
  std::string Write(const std::string& contents) {
    std::string path = ::testing::TempDir() + "demsort_hosts_" +
                       ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name() +
                       ".txt";
    std::FILE* f = std::fopen(path.c_str(), "w");
    EXPECT_NE(f, nullptr);
    std::fwrite(contents.data(), 1, contents.size(), f);
    std::fclose(f);
    return path;
  }
};

TEST_F(HostsFileTest, SlotCountsDefaultToOne) {
  auto peers = ParseHostsFile(Write("alpha:5000\nbeta:5001\n"));
  ASSERT_TRUE(peers.ok()) << peers.status().ToString();
  ASSERT_EQ(peers.value().size(), 2u);
  EXPECT_EQ(peers.value()[0].slots, 1);
  EXPECT_EQ(peers.value()[1].slots, 1);
  Topology topo = TopologyFromPeers(peers.value());
  EXPECT_EQ(topo.num_pes(), 2);
  EXPECT_FALSE(topo.hierarchical());
}

TEST_F(HostsFileTest, MixedSlotCountsFeedTopology) {
  auto peers = ParseHostsFile(
      Write("# paper geometry: PEs share nodes\n"
            "alpha:5000 x2\n"
            "beta:5001 x3   # big node\n"
            "gamma:5002\n"));
  ASSERT_TRUE(peers.ok()) << peers.status().ToString();
  ASSERT_EQ(peers.value().size(), 3u);
  EXPECT_EQ(peers.value()[0].slots, 2);
  EXPECT_EQ(peers.value()[1].slots, 3);
  EXPECT_EQ(peers.value()[2].slots, 1);
  EXPECT_EQ(peers.value()[1].host, "beta");
  EXPECT_EQ(peers.value()[1].port, 5001);
  Topology topo = TopologyFromPeers(peers.value());
  EXPECT_EQ(topo.num_pes(), 6);
  EXPECT_EQ(topo.num_nodes(), 3);
  EXPECT_TRUE(topo.hierarchical());
  EXPECT_EQ(topo.node_of(4), 1);   // beta's last PE
  EXPECT_EQ(topo.leader_of(1), 2);  // beta's leader rank
  EXPECT_EQ(topo.InterNodeConnections(), 6u);
}

TEST_F(HostsFileTest, MalformedSlotCountsAreCleanErrors) {
  EXPECT_FALSE(ParseHostsFile(Write("alpha:5000 x0\n")).ok());
  EXPECT_FALSE(ParseHostsFile(Write("alpha:5000 x-2\n")).ok());
  EXPECT_FALSE(ParseHostsFile(Write("alpha:5000 x\n")).ok());
  EXPECT_FALSE(ParseHostsFile(Write("alpha:5000 xb\n")).ok());
  EXPECT_FALSE(ParseHostsFile(Write("alpha:5000 4\n")).ok());
  EXPECT_FALSE(ParseHostsFile(Write("alpha:5000 x4 junk\n")).ok());
  // The pre-slot syntax errors stay errors.
  EXPECT_FALSE(ParseHostsFile(Write("alpha\n")).ok());
  EXPECT_FALSE(ParseHostsFile(Write("alpha:\n")).ok());
  EXPECT_FALSE(ParseHostsFile(Write("alpha:notaport\n")).ok());
  EXPECT_FALSE(ParseHostsFile(Write("alpha:99999\n")).ok());
}

}  // namespace
}  // namespace demsort::net
