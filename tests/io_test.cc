#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <vector>

#include "io/backend.h"
#include "io/block_manager.h"
#include "io/disk.h"
#include "io/striped_writer.h"
#include "util/aligned_buffer.h"

namespace demsort::io {
namespace {

constexpr size_t kBlock = 4096;

AlignedBuffer PatternBlock(uint8_t tag) {
  AlignedBuffer buf(kBlock);
  std::memset(buf.data(), tag, kBlock);
  return buf;
}

// ------------------------------------------------------------ Backend ----

TEST(MemoryBackendTest, RoundTrip) {
  MemoryBackend backend(kBlock);
  AlignedBuffer w = PatternBlock(0xAB);
  ASSERT_TRUE(backend.WriteBlock(5, w.data()).ok());
  AlignedBuffer r(kBlock);
  ASSERT_TRUE(backend.ReadBlock(5, r.data()).ok());
  EXPECT_EQ(std::memcmp(w.data(), r.data(), kBlock), 0);
}

TEST(MemoryBackendTest, ReadBeforeWriteFails) {
  MemoryBackend backend(kBlock);
  AlignedBuffer r(kBlock);
  EXPECT_EQ(backend.ReadBlock(0, r.data()).code(), StatusCode::kNotFound);
}

TEST(MemoryBackendTest, OverwriteReplaces) {
  MemoryBackend backend(kBlock);
  AlignedBuffer a = PatternBlock(1), b = PatternBlock(2), r(kBlock);
  ASSERT_TRUE(backend.WriteBlock(0, a.data()).ok());
  ASSERT_TRUE(backend.WriteBlock(0, b.data()).ok());
  ASSERT_TRUE(backend.ReadBlock(0, r.data()).ok());
  EXPECT_EQ(r.data()[17], 2);
}

TEST(FileBackendTest, RoundTrip) {
  std::string path = std::filesystem::temp_directory_path() /
                     "demsort_file_backend_test.bin";
  auto created = FileBackend::Create(path, kBlock);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto backend = std::move(created).value();
  AlignedBuffer w = PatternBlock(0xCD), r(kBlock);
  ASSERT_TRUE(backend->WriteBlock(9, w.data()).ok());
  ASSERT_TRUE(backend->ReadBlock(9, r.data()).ok());
  EXPECT_EQ(std::memcmp(w.data(), r.data(), kBlock), 0);
}

TEST(FileBackendTest, ReadBeforeWriteFails) {
  std::string path = std::filesystem::temp_directory_path() /
                     "demsort_file_backend_rbw.bin";
  auto created = FileBackend::Create(path, kBlock);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto backend = std::move(created).value();
  AlignedBuffer w = PatternBlock(0x33), r(kBlock);
  // Never-written block in a fresh file.
  EXPECT_EQ(backend->ReadBlock(0, r.data()).code(), StatusCode::kNotFound);
  // Writing block 5 leaves a filesystem hole at 0..4; reading the hole must
  // still fail loudly instead of returning zeros.
  ASSERT_TRUE(backend->WriteBlock(5, w.data()).ok());
  EXPECT_EQ(backend->ReadBlock(3, r.data()).code(), StatusCode::kNotFound);
  EXPECT_TRUE(backend->ReadBlock(5, r.data()).ok());
}

TEST(FileBackendTest, CreateTruncatesScratchCleansUp) {
  std::string path = std::filesystem::temp_directory_path() /
                     "demsort_file_backend_scratch.bin";
  {
    auto created = FileBackend::Create(path, kBlock);
    ASSERT_TRUE(created.ok());
    AlignedBuffer w = PatternBlock(1);
    ASSERT_TRUE(created.value()->WriteBlock(0, w.data()).ok());
    EXPECT_TRUE(std::filesystem::exists(path));
  }
  // Default Create() semantics: scratch disk, unlinked on close.
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(FileBackendTest, ReopenPreservesContents) {
  std::string path = std::filesystem::temp_directory_path() /
                     "demsort_file_backend_reopen.bin";
  {
    auto created = FileBackend::Create(path, kBlock,
                                       /*unlink_on_close=*/false);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    AlignedBuffer a = PatternBlock(0x41), b = PatternBlock(0x42);
    ASSERT_TRUE(created.value()->WriteBlock(0, a.data()).ok());
    ASSERT_TRUE(created.value()->WriteBlock(1, b.data()).ok());
  }
  ASSERT_TRUE(std::filesystem::exists(path));
  {
    auto reopened = FileBackend::Open(path, kBlock);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    AlignedBuffer r(kBlock);
    ASSERT_TRUE(reopened.value()->ReadBlock(1, r.data()).ok());
    EXPECT_EQ(r.data()[99], 0x42);
    ASSERT_TRUE(reopened.value()->ReadBlock(0, r.data()).ok());
    EXPECT_EQ(r.data()[99], 0x41);
    // Beyond the reopened file's extent: never written.
    EXPECT_EQ(reopened.value()->ReadBlock(7, r.data()).code(),
              StatusCode::kNotFound);
    // New writes extend the reopened file.
    AlignedBuffer c = PatternBlock(0x43);
    ASSERT_TRUE(reopened.value()->WriteBlock(7, c.data()).ok());
    EXPECT_TRUE(reopened.value()->ReadBlock(7, r.data()).ok());
  }
  EXPECT_TRUE(std::filesystem::exists(path));  // Open never unlinks
  std::filesystem::remove(path);
}

TEST(FileBackendTest, OpenMissingFileIsNotFound) {
  std::string path = std::filesystem::temp_directory_path() /
                     "demsort_file_backend_missing.bin";
  std::filesystem::remove(path);
  auto opened = FileBackend::Open(path, kBlock);
  EXPECT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kNotFound);
}

// --------------------------------------------------------- VirtualDisk ----

TEST(VirtualDiskTest, AsyncRoundTrip) {
  VirtualDisk disk(std::make_unique<MemoryBackend>(kBlock), {});
  AlignedBuffer w = PatternBlock(0x11), r(kBlock);
  disk.WriteAsync(3, w.data()).WaitOk();
  disk.ReadAsync(3, r.data()).WaitOk();
  EXPECT_EQ(std::memcmp(w.data(), r.data(), kBlock), 0);
}

TEST(VirtualDiskTest, SyncModeWorks) {
  VirtualDisk::Options options;
  options.async = false;
  VirtualDisk disk(std::make_unique<MemoryBackend>(kBlock), options);
  AlignedBuffer w = PatternBlock(0x22), r(kBlock);
  Request wr = disk.WriteAsync(0, w.data());
  EXPECT_TRUE(wr.done());  // inline execution completes immediately
  disk.ReadAsync(0, r.data()).WaitOk();
  EXPECT_EQ(r.data()[0], 0x22);
}

TEST(VirtualDiskTest, FifoOrderPreservesReadAfterWrite) {
  VirtualDisk disk(std::make_unique<MemoryBackend>(kBlock), {});
  // Queue many write/read pairs to the same block; FIFO must serialize.
  for (int round = 0; round < 50; ++round) {
    AlignedBuffer w = PatternBlock(static_cast<uint8_t>(round));
    AlignedBuffer r(kBlock);
    Request wreq = disk.WriteAsync(0, w.data());
    Request rreq = disk.ReadAsync(0, r.data());
    rreq.WaitOk();
    EXPECT_EQ(r.data()[100], static_cast<uint8_t>(round));
    wreq.WaitOk();
  }
}

TEST(VirtualDiskTest, StatsCountOpsAndBytes) {
  VirtualDisk disk(std::make_unique<MemoryBackend>(kBlock), {});
  AlignedBuffer buf = PatternBlock(1);
  for (uint64_t b = 0; b < 10; ++b) disk.WriteAsync(b, buf.data()).WaitOk();
  for (uint64_t b = 0; b < 4; ++b) disk.ReadAsync(b, buf.data()).WaitOk();
  disk.Drain();
  IoStatsSnapshot stats = disk.Stats();
  EXPECT_EQ(stats.writes, 10u);
  EXPECT_EQ(stats.reads, 4u);
  EXPECT_EQ(stats.bytes_written, 10 * kBlock);
  EXPECT_EQ(stats.bytes_read, 4 * kBlock);
  EXPECT_GT(stats.model_busy_ns, 0u);
}

TEST(VirtualDiskTest, SequentialAccessAvoidsSeeks) {
  VirtualDisk disk(std::make_unique<MemoryBackend>(kBlock), {});
  AlignedBuffer buf = PatternBlock(1);
  for (uint64_t b = 0; b < 20; ++b) disk.WriteAsync(b, buf.data()).WaitOk();
  uint64_t seq_seeks = disk.Stats().seeks;
  EXPECT_EQ(seq_seeks, 1u);  // only the first access seeks

  for (uint64_t b = 0; b < 20; b += 2) {
    disk.ReadAsync(19 - b, buf.data()).WaitOk();
  }
  EXPECT_GT(disk.Stats().seeks, seq_seeks + 5);
}

TEST(VirtualDiskTest, ReadErrorSurfaces) {
  VirtualDisk disk(std::make_unique<MemoryBackend>(kBlock), {});
  AlignedBuffer r(kBlock);
  Status s = disk.ReadAsync(99, r.data()).Wait();
  EXPECT_FALSE(s.ok());
}

TEST(DiskModelTest, TransferTimeScalesWithBytes) {
  DiskModel model;
  EXPECT_NEAR(model.TransferSeconds(67 * 1024 * 1024), 1.0, 1e-9);
  EXPECT_GT(model.SeekSeconds(), 0.0);
}

// -------------------------------------------------------- BlockManager ----

BlockManager::Options SmallBm(uint32_t disks = 3) {
  BlockManager::Options options;
  options.num_disks = disks;
  options.block_size = kBlock;
  return options;
}

TEST(BlockManagerTest, AllocationStripesAcrossDisks) {
  BlockManager bm(SmallBm(3));
  std::vector<BlockId> ids = bm.AllocateMany(9);
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(ids[i].disk, static_cast<uint32_t>(i % 3));
  }
}

TEST(BlockManagerTest, FreeListIsReused) {
  BlockManager bm(SmallBm(1));
  BlockId a = bm.Allocate();
  bm.Free(a);
  BlockId b = bm.Allocate();
  EXPECT_EQ(a, b);
  EXPECT_EQ(bm.blocks_in_use(), 1u);
}

TEST(BlockManagerTest, PeakTracksHighWater) {
  BlockManager bm(SmallBm(2));
  std::vector<BlockId> ids = bm.AllocateMany(10);
  for (const BlockId& id : ids) bm.Free(id);
  bm.AllocateMany(3);
  EXPECT_EQ(bm.blocks_in_use(), 3u);
  EXPECT_EQ(bm.peak_blocks_in_use(), 10u);
}

TEST(BlockManagerTest, ReadWriteThroughIds) {
  BlockManager bm(SmallBm(2));
  std::vector<BlockId> ids = bm.AllocateMany(4);
  for (size_t i = 0; i < ids.size(); ++i) {
    AlignedBuffer w = PatternBlock(static_cast<uint8_t>(i + 1));
    bm.WriteSync(ids[i], w.data());
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    AlignedBuffer r(kBlock);
    bm.ReadSync(ids[i], r.data());
    EXPECT_EQ(r.data()[0], static_cast<uint8_t>(i + 1));
  }
}

TEST(BlockManagerTest, FileBackendEndToEnd) {
  BlockManager::Options options = SmallBm(2);
  options.backend = BlockManager::BackendKind::kFile;
  options.file_dir = std::filesystem::temp_directory_path().string();
  options.pe_id = 77;
  BlockManager bm(options);
  std::vector<BlockId> ids = bm.AllocateMany(6);
  AlignedBuffer w = PatternBlock(0x5A), r(kBlock);
  bm.WriteSync(ids[5], w.data());
  bm.ReadSync(ids[5], r.data());
  EXPECT_EQ(std::memcmp(w.data(), r.data(), kBlock), 0);
}

TEST(BlockManagerTest, AllocateOnDiskPins) {
  BlockManager bm(SmallBm(3));
  BlockId id = bm.AllocateOnDisk(2);
  EXPECT_EQ(id.disk, 2u);
}

TEST(BlockManagerTest, TotalStatsAggregatesDisks) {
  BlockManager bm(SmallBm(2));
  std::vector<BlockId> ids = bm.AllocateMany(8);
  AlignedBuffer w = PatternBlock(1);
  for (const BlockId& id : ids) bm.WriteSync(id, w.data());
  EXPECT_EQ(bm.TotalStats().writes, 8u);
  EXPECT_EQ(bm.DiskStats(0).writes + bm.DiskStats(1).writes, 8u);
}

// ------------------------------------------------------- StripedWriter ----

TEST(StripedWriterTest, WritesAndTracksFirstRecords) {
  BlockManager bm(SmallBm(2));
  StripedWriter<uint64_t> writer(&bm);
  const size_t epb = kBlock / sizeof(uint64_t);
  for (uint64_t i = 0; i < 3 * epb + 7; ++i) writer.Append(i);
  writer.Finish();
  EXPECT_EQ(writer.total_appended(), 3 * epb + 7);
  ASSERT_EQ(writer.blocks().size(), 4u);
  EXPECT_EQ(writer.block_first_records()[1], epb);
  EXPECT_EQ(writer.last_block_fill(), 7u);

  AlignedBuffer r(kBlock);
  bm.ReadSync(writer.blocks()[2], r.data());
  EXPECT_EQ(reinterpret_cast<uint64_t*>(r.data())[0], 2 * epb);
}

TEST(StripedWriterTest, EmptyFinishIsSafe) {
  BlockManager bm(SmallBm(2));
  StripedWriter<uint64_t> writer(&bm);
  writer.Finish();
  EXPECT_EQ(writer.total_appended(), 0u);
  EXPECT_TRUE(writer.blocks().empty());
}

TEST(StripedWriterTest, ExactBlockBoundary) {
  BlockManager bm(SmallBm(1));
  StripedWriter<uint64_t> writer(&bm);
  const size_t epb = kBlock / sizeof(uint64_t);
  for (uint64_t i = 0; i < 2 * epb; ++i) writer.Append(i);
  writer.Finish();
  EXPECT_EQ(writer.blocks().size(), 2u);
  EXPECT_EQ(writer.last_block_fill(), epb);
}

}  // namespace
}  // namespace demsort::io
