#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <vector>

#include "io/backend.h"
#include "io/block_manager.h"
#include "io/disk.h"
#include "io/striped_writer.h"
#include "util/aligned_buffer.h"

namespace demsort::io {
namespace {

constexpr size_t kBlock = 4096;

AlignedBuffer PatternBlock(uint8_t tag) {
  AlignedBuffer buf(kBlock);
  std::memset(buf.data(), tag, kBlock);
  return buf;
}

// ------------------------------------------------------------ Backend ----

TEST(MemoryBackendTest, RoundTrip) {
  MemoryBackend backend(kBlock);
  AlignedBuffer w = PatternBlock(0xAB);
  ASSERT_TRUE(backend.WriteBlock(5, w.data()).ok());
  AlignedBuffer r(kBlock);
  ASSERT_TRUE(backend.ReadBlock(5, r.data()).ok());
  EXPECT_EQ(std::memcmp(w.data(), r.data(), kBlock), 0);
}

TEST(MemoryBackendTest, ReadBeforeWriteFails) {
  MemoryBackend backend(kBlock);
  AlignedBuffer r(kBlock);
  EXPECT_EQ(backend.ReadBlock(0, r.data()).code(), StatusCode::kNotFound);
}

TEST(MemoryBackendTest, OverwriteReplaces) {
  MemoryBackend backend(kBlock);
  AlignedBuffer a = PatternBlock(1), b = PatternBlock(2), r(kBlock);
  ASSERT_TRUE(backend.WriteBlock(0, a.data()).ok());
  ASSERT_TRUE(backend.WriteBlock(0, b.data()).ok());
  ASSERT_TRUE(backend.ReadBlock(0, r.data()).ok());
  EXPECT_EQ(r.data()[17], 2);
}

TEST(FileBackendTest, RoundTrip) {
  std::string path = std::filesystem::temp_directory_path() /
                     "demsort_file_backend_test.bin";
  auto created = FileBackend::Create(path, kBlock);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto backend = std::move(created).value();
  AlignedBuffer w = PatternBlock(0xCD), r(kBlock);
  ASSERT_TRUE(backend->WriteBlock(9, w.data()).ok());
  ASSERT_TRUE(backend->ReadBlock(9, r.data()).ok());
  EXPECT_EQ(std::memcmp(w.data(), r.data(), kBlock), 0);
}

TEST(FileBackendTest, ReadBeforeWriteFails) {
  std::string path = std::filesystem::temp_directory_path() /
                     "demsort_file_backend_rbw.bin";
  auto created = FileBackend::Create(path, kBlock);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto backend = std::move(created).value();
  AlignedBuffer w = PatternBlock(0x33), r(kBlock);
  // Never-written block in a fresh file.
  EXPECT_EQ(backend->ReadBlock(0, r.data()).code(), StatusCode::kNotFound);
  // Writing block 5 leaves a filesystem hole at 0..4; reading the hole must
  // still fail loudly instead of returning zeros.
  ASSERT_TRUE(backend->WriteBlock(5, w.data()).ok());
  EXPECT_EQ(backend->ReadBlock(3, r.data()).code(), StatusCode::kNotFound);
  EXPECT_TRUE(backend->ReadBlock(5, r.data()).ok());
}

TEST(FileBackendTest, CreateTruncatesScratchCleansUp) {
  std::string path = std::filesystem::temp_directory_path() /
                     "demsort_file_backend_scratch.bin";
  {
    auto created = FileBackend::Create(path, kBlock);
    ASSERT_TRUE(created.ok());
    AlignedBuffer w = PatternBlock(1);
    ASSERT_TRUE(created.value()->WriteBlock(0, w.data()).ok());
    EXPECT_TRUE(std::filesystem::exists(path));
  }
  // Default Create() semantics: scratch disk, unlinked on close.
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(FileBackendTest, ReopenPreservesContents) {
  std::string path = std::filesystem::temp_directory_path() /
                     "demsort_file_backend_reopen.bin";
  {
    auto created = FileBackend::Create(path, kBlock,
                                       /*unlink_on_close=*/false);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    AlignedBuffer a = PatternBlock(0x41), b = PatternBlock(0x42);
    ASSERT_TRUE(created.value()->WriteBlock(0, a.data()).ok());
    ASSERT_TRUE(created.value()->WriteBlock(1, b.data()).ok());
  }
  ASSERT_TRUE(std::filesystem::exists(path));
  {
    auto reopened = FileBackend::Open(path, kBlock);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    AlignedBuffer r(kBlock);
    ASSERT_TRUE(reopened.value()->ReadBlock(1, r.data()).ok());
    EXPECT_EQ(r.data()[99], 0x42);
    ASSERT_TRUE(reopened.value()->ReadBlock(0, r.data()).ok());
    EXPECT_EQ(r.data()[99], 0x41);
    // Beyond the reopened file's extent: never written.
    EXPECT_EQ(reopened.value()->ReadBlock(7, r.data()).code(),
              StatusCode::kNotFound);
    // New writes extend the reopened file.
    AlignedBuffer c = PatternBlock(0x43);
    ASSERT_TRUE(reopened.value()->WriteBlock(7, c.data()).ok());
    EXPECT_TRUE(reopened.value()->ReadBlock(7, r.data()).ok());
  }
  EXPECT_TRUE(std::filesystem::exists(path));  // Open never unlinks
  std::filesystem::remove(path);
}

TEST(FileBackendTest, OpenMissingFileIsNotFound) {
  std::string path = std::filesystem::temp_directory_path() /
                     "demsort_file_backend_missing.bin";
  std::filesystem::remove(path);
  auto opened = FileBackend::Open(path, kBlock);
  EXPECT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kNotFound);
}

// --------------------------------------------------------- VirtualDisk ----

TEST(VirtualDiskTest, AsyncRoundTrip) {
  VirtualDisk disk(std::make_unique<MemoryBackend>(kBlock), {});
  AlignedBuffer w = PatternBlock(0x11), r(kBlock);
  disk.WriteAsync(3, w.data()).WaitOk();
  disk.ReadAsync(3, r.data()).WaitOk();
  EXPECT_EQ(std::memcmp(w.data(), r.data(), kBlock), 0);
}

TEST(VirtualDiskTest, SyncModeWorks) {
  VirtualDisk::Options options;
  options.async = false;
  VirtualDisk disk(std::make_unique<MemoryBackend>(kBlock), options);
  AlignedBuffer w = PatternBlock(0x22), r(kBlock);
  Request wr = disk.WriteAsync(0, w.data());
  EXPECT_TRUE(wr.done());  // inline execution completes immediately
  disk.ReadAsync(0, r.data()).WaitOk();
  EXPECT_EQ(r.data()[0], 0x22);
}

TEST(VirtualDiskTest, FifoOrderPreservesReadAfterWrite) {
  VirtualDisk disk(std::make_unique<MemoryBackend>(kBlock), {});
  // Queue many write/read pairs to the same block; FIFO must serialize.
  for (int round = 0; round < 50; ++round) {
    AlignedBuffer w = PatternBlock(static_cast<uint8_t>(round));
    AlignedBuffer r(kBlock);
    Request wreq = disk.WriteAsync(0, w.data());
    Request rreq = disk.ReadAsync(0, r.data());
    rreq.WaitOk();
    EXPECT_EQ(r.data()[100], static_cast<uint8_t>(round));
    wreq.WaitOk();
  }
}

TEST(VirtualDiskTest, StatsCountOpsAndBytes) {
  VirtualDisk disk(std::make_unique<MemoryBackend>(kBlock), {});
  AlignedBuffer buf = PatternBlock(1);
  for (uint64_t b = 0; b < 10; ++b) disk.WriteAsync(b, buf.data()).WaitOk();
  for (uint64_t b = 0; b < 4; ++b) disk.ReadAsync(b, buf.data()).WaitOk();
  disk.Drain();
  IoStatsSnapshot stats = disk.Stats();
  EXPECT_EQ(stats.writes, 10u);
  EXPECT_EQ(stats.reads, 4u);
  EXPECT_EQ(stats.bytes_written, 10 * kBlock);
  EXPECT_EQ(stats.bytes_read, 4 * kBlock);
  EXPECT_GT(stats.model_busy_ns, 0u);
}

TEST(VirtualDiskTest, SequentialAccessAvoidsSeeks) {
  VirtualDisk disk(std::make_unique<MemoryBackend>(kBlock), {});
  AlignedBuffer buf = PatternBlock(1);
  for (uint64_t b = 0; b < 20; ++b) disk.WriteAsync(b, buf.data()).WaitOk();
  uint64_t seq_seeks = disk.Stats().seeks;
  EXPECT_EQ(seq_seeks, 1u);  // only the first access seeks

  for (uint64_t b = 0; b < 20; b += 2) {
    disk.ReadAsync(19 - b, buf.data()).WaitOk();
  }
  EXPECT_GT(disk.Stats().seeks, seq_seeks + 5);
}

TEST(VirtualDiskTest, ReadErrorSurfaces) {
  VirtualDisk disk(std::make_unique<MemoryBackend>(kBlock), {});
  AlignedBuffer r(kBlock);
  Status s = disk.ReadAsync(99, r.data()).Wait();
  EXPECT_FALSE(s.ok());
}

TEST(DiskModelTest, TransferTimeScalesWithBytes) {
  DiskModel model;
  EXPECT_NEAR(model.TransferSeconds(67 * 1024 * 1024), 1.0, 1e-9);
  EXPECT_GT(model.SeekSeconds(), 0.0);
}

// -------------------------------------------------------- BlockManager ----

BlockManager::Options SmallBm(uint32_t disks = 3) {
  BlockManager::Options options;
  options.num_disks = disks;
  options.block_size = kBlock;
  return options;
}

TEST(BlockManagerTest, AllocationStripesAcrossDisks) {
  BlockManager bm(SmallBm(3));
  std::vector<BlockId> ids = bm.AllocateMany(9);
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(ids[i].disk, static_cast<uint32_t>(i % 3));
  }
}

TEST(BlockManagerTest, FreeListIsReused) {
  BlockManager bm(SmallBm(1));
  BlockId a = bm.Allocate();
  bm.Free(a);
  BlockId b = bm.Allocate();
  EXPECT_EQ(a, b);
  EXPECT_EQ(bm.blocks_in_use(), 1u);
}

TEST(BlockManagerTest, PeakTracksHighWater) {
  BlockManager bm(SmallBm(2));
  std::vector<BlockId> ids = bm.AllocateMany(10);
  for (const BlockId& id : ids) bm.Free(id);
  bm.AllocateMany(3);
  EXPECT_EQ(bm.blocks_in_use(), 3u);
  EXPECT_EQ(bm.peak_blocks_in_use(), 10u);
}

TEST(BlockManagerTest, ReadWriteThroughIds) {
  BlockManager bm(SmallBm(2));
  std::vector<BlockId> ids = bm.AllocateMany(4);
  for (size_t i = 0; i < ids.size(); ++i) {
    AlignedBuffer w = PatternBlock(static_cast<uint8_t>(i + 1));
    bm.WriteSync(ids[i], w.data());
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    AlignedBuffer r(kBlock);
    bm.ReadSync(ids[i], r.data());
    EXPECT_EQ(r.data()[0], static_cast<uint8_t>(i + 1));
  }
}

TEST(BlockManagerTest, FileBackendEndToEnd) {
  BlockManager::Options options = SmallBm(2);
  options.backend = BlockManager::BackendKind::kFile;
  options.file_dir = std::filesystem::temp_directory_path().string();
  options.pe_id = 77;
  BlockManager bm(options);
  std::vector<BlockId> ids = bm.AllocateMany(6);
  AlignedBuffer w = PatternBlock(0x5A), r(kBlock);
  bm.WriteSync(ids[5], w.data());
  bm.ReadSync(ids[5], r.data());
  EXPECT_EQ(std::memcmp(w.data(), r.data(), kBlock), 0);
}

TEST(BlockManagerTest, AllocateOnDiskPins) {
  BlockManager bm(SmallBm(3));
  BlockId id = bm.AllocateOnDisk(2);
  EXPECT_EQ(id.disk, 2u);
}

TEST(BlockManagerTest, TotalStatsAggregatesDisks) {
  BlockManager bm(SmallBm(2));
  std::vector<BlockId> ids = bm.AllocateMany(8);
  AlignedBuffer w = PatternBlock(1);
  for (const BlockId& id : ids) bm.WriteSync(id, w.data());
  EXPECT_EQ(bm.TotalStats().writes, 8u);
  EXPECT_EQ(bm.DiskStats(0).writes + bm.DiskStats(1).writes, 8u);
}

// ------------------------------------------------------- StripedWriter ----

TEST(StripedWriterTest, WritesAndTracksFirstRecords) {
  BlockManager bm(SmallBm(2));
  StripedWriter<uint64_t> writer(&bm);
  const size_t epb = kBlock / sizeof(uint64_t);
  for (uint64_t i = 0; i < 3 * epb + 7; ++i) writer.Append(i);
  writer.Finish();
  EXPECT_EQ(writer.total_appended(), 3 * epb + 7);
  ASSERT_EQ(writer.blocks().size(), 4u);
  EXPECT_EQ(writer.block_first_records()[1], epb);
  EXPECT_EQ(writer.last_block_fill(), 7u);

  AlignedBuffer r(kBlock);
  bm.ReadSync(writer.blocks()[2], r.data());
  EXPECT_EQ(reinterpret_cast<uint64_t*>(r.data())[0], 2 * epb);
}

TEST(StripedWriterTest, EmptyFinishIsSafe) {
  BlockManager bm(SmallBm(2));
  StripedWriter<uint64_t> writer(&bm);
  writer.Finish();
  EXPECT_EQ(writer.total_appended(), 0u);
  EXPECT_TRUE(writer.blocks().empty());
}

TEST(StripedWriterTest, ExactBlockBoundary) {
  BlockManager bm(SmallBm(1));
  StripedWriter<uint64_t> writer(&bm);
  const size_t epb = kBlock / sizeof(uint64_t);
  for (uint64_t i = 0; i < 2 * epb; ++i) writer.Append(i);
  writer.Finish();
  EXPECT_EQ(writer.blocks().size(), 2u);
  EXPECT_EQ(writer.last_block_fill(), epb);
}

TEST(StripedWriterTest, AppendSpanMatchesAppend) {
  BlockManager bm(SmallBm(2));
  const size_t epb = kBlock / sizeof(uint64_t);
  std::vector<uint64_t> data(3 * epb + 11);
  for (size_t i = 0; i < data.size(); ++i) data[i] = i * 7;

  StripedWriter<uint64_t> a(&bm), b(&bm);
  for (uint64_t v : data) a.Append(v);
  // Spans sliced at awkward offsets must produce the identical stream.
  b.AppendSpan(data.data(), 3);
  b.AppendSpan(data.data() + 3, epb);
  b.AppendSpan(data.data() + 3 + epb, data.size() - 3 - epb);
  a.Finish();
  b.Finish();
  EXPECT_EQ(a.total_appended(), b.total_appended());
  EXPECT_EQ(a.block_first_records(), b.block_first_records());
  EXPECT_EQ(a.last_block_fill(), b.last_block_fill());
  ASSERT_EQ(a.blocks().size(), b.blocks().size());
  for (size_t i = 0; i < a.blocks().size(); ++i) {
    AlignedBuffer ra(kBlock), rb(kBlock);
    bm.ReadSync(a.blocks()[i], ra.data());
    bm.ReadSync(b.blocks()[i], rb.data());
    size_t fill = (i + 1 == a.blocks().size() ? a.last_block_fill() : epb) *
                  sizeof(uint64_t);
    EXPECT_EQ(std::memcmp(ra.data(), rb.data(), fill), 0) << "block " << i;
  }
}

// ------------------------------------------------- Backend conformance ----
//
// One suite, every compiled-in backend kind: the async seam contract
// (Submit/Reap, sync convenience, read-before-write rejection, queue
// capacity), the TrustOnly recovery mask, and reopen durability. Kinds the
// host cannot serve (O_DIRECT on tmpfs, io_uring behind a seccomp filter
// or forced off at configure time) skip with the reason in the log — the
// CI matrix covers both configurations.

class BackendConformanceTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  std::string NewPath(const std::string& tag) {
    return (std::filesystem::temp_directory_path() /
            (std::string("demsort_conf_") + BackendKindName(GetParam()) +
             "_" + tag + ".bin"))
        .string();
  }
};

#define MAKE_BACKEND_OR_SKIP(var, opts)                                   \
  std::unique_ptr<StorageBackend> var;                                    \
  {                                                                       \
    auto made = MakeBackend(GetParam(), kBlock, opts);                    \
    if (!made.ok()) {                                                     \
      GTEST_SKIP() << BackendKindName(GetParam())                         \
                   << " unavailable here: " << made.status().ToString();  \
    }                                                                     \
    var = std::move(made).value();                                        \
  }

TEST_P(BackendConformanceTest, SyncRoundTrip) {
  BackendFileOptions opts;
  opts.path = NewPath("rt");
  MAKE_BACKEND_OR_SKIP(backend, opts);
  AlignedBuffer w = PatternBlock(0xA7), r(kBlock);
  ASSERT_TRUE(backend->WriteBlock(5, w.data()).ok());
  ASSERT_TRUE(backend->ReadBlock(5, r.data()).ok());
  EXPECT_EQ(std::memcmp(w.data(), r.data(), kBlock), 0);
}

TEST_P(BackendConformanceTest, ReadBeforeWriteRejected) {
  BackendFileOptions opts;
  opts.path = NewPath("rbw");
  MAKE_BACKEND_OR_SKIP(backend, opts);
  AlignedBuffer w = PatternBlock(0x11), r(kBlock);
  EXPECT_FALSE(backend->ReadBlock(0, r.data()).ok());
  // A write at 5 leaves 0..4 unwritten; the hole must still be rejected.
  ASSERT_TRUE(backend->WriteBlock(5, w.data()).ok());
  EXPECT_FALSE(backend->ReadBlock(3, r.data()).ok());
  EXPECT_TRUE(backend->ReadBlock(5, r.data()).ok());
}

TEST_P(BackendConformanceTest, OverwriteReplaces) {
  BackendFileOptions opts;
  opts.path = NewPath("ow");
  MAKE_BACKEND_OR_SKIP(backend, opts);
  AlignedBuffer a = PatternBlock(1), b = PatternBlock(2), r(kBlock);
  ASSERT_TRUE(backend->WriteBlock(0, a.data()).ok());
  ASSERT_TRUE(backend->WriteBlock(0, b.data()).ok());
  ASSERT_TRUE(backend->ReadBlock(0, r.data()).ok());
  EXPECT_EQ(r.data()[17], 2);
}

TEST_P(BackendConformanceTest, SubmitReapBatchAtQueueDepth) {
  BackendFileOptions opts;
  opts.path = NewPath("batch");
  opts.queue_depth = 8;
  MAKE_BACKEND_OR_SKIP(backend, opts);
  EXPECT_GE(backend->queue_capacity(), 1u);

  // Fill the device queue with writes, then reap them all.
  constexpr int kOps = 24;
  std::vector<AlignedBuffer> bufs;
  for (int i = 0; i < kOps; ++i) {
    bufs.push_back(PatternBlock(static_cast<uint8_t>(i + 1)));
  }
  std::vector<IoCompletion> done;
  size_t submitted = 0, reaped = 0;
  while (submitted < kOps || reaped < kOps) {
    bool progressed = false;
    while (submitted < kOps) {
      IoOp op;
      op.is_write = true;
      op.block = submitted;
      op.write_buf = bufs[submitted].data();
      op.user_data = submitted;
      if (!backend->Submit(op)) break;  // device queue full
      ++submitted;
      progressed = true;
    }
    done.clear();
    size_t n = backend->Reap(&done, /*wait=*/!progressed);
    reaped += n;
    for (const IoCompletion& c : done) {
      EXPECT_TRUE(c.status.ok()) << c.status.ToString();
      EXPECT_LT(c.user_data, static_cast<uint64_t>(kOps));
    }
  }
  EXPECT_EQ(reaped, static_cast<size_t>(kOps));
  // Nothing in flight: a blocking reap must return 0, not hang.
  done.clear();
  EXPECT_EQ(backend->Reap(&done, /*wait=*/true), 0u);

  // Reads at depth verify every block's payload.
  std::vector<AlignedBuffer> reads(kOps);
  for (int i = 0; i < kOps; ++i) reads[i] = AlignedBuffer(kBlock);
  submitted = 0;
  reaped = 0;
  while (submitted < kOps || reaped < kOps) {
    bool progressed = false;
    while (submitted < kOps) {
      IoOp op;
      op.block = submitted;
      op.read_buf = reads[submitted].data();
      op.user_data = submitted;
      if (!backend->Submit(op)) break;
      ++submitted;
      progressed = true;
    }
    done.clear();
    size_t n = backend->Reap(&done, /*wait=*/!progressed);
    reaped += n;
    for (const IoCompletion& c : done) {
      ASSERT_TRUE(c.status.ok()) << c.status.ToString();
      EXPECT_EQ(reads[c.user_data].data()[40],
                static_cast<uint8_t>(c.user_data + 1));
    }
  }
}

TEST_P(BackendConformanceTest, FlushSucceedsWithNothingInFlight) {
  BackendFileOptions opts;
  opts.path = NewPath("flush");
  MAKE_BACKEND_OR_SKIP(backend, opts);
  AlignedBuffer w = PatternBlock(0x77);
  ASSERT_TRUE(backend->WriteBlock(2, w.data()).ok());
  EXPECT_TRUE(backend->Flush().ok());
}

TEST_P(BackendConformanceTest, TrustOnlyMasksUnlistedBlocks) {
  if (!IsFileBacked(GetParam())) {
    GTEST_SKIP() << "TrustOnly is the recovery contract of the "
                    "file-backed kinds";
  }
  BackendFileOptions opts;
  opts.path = NewPath("trust");
  MAKE_BACKEND_OR_SKIP(backend, opts);
  AlignedBuffer w = PatternBlock(0x55), r(kBlock);
  for (uint64_t b = 0; b < 6; ++b) {
    ASSERT_TRUE(backend->WriteBlock(b, w.data()).ok());
  }
  backend->TrustOnly({1, 4});
  EXPECT_TRUE(backend->ReadBlock(1, r.data()).ok());
  EXPECT_TRUE(backend->ReadBlock(4, r.data()).ok());
  // Untrusted blocks read as never-written even though their bytes exist.
  EXPECT_FALSE(backend->ReadBlock(0, r.data()).ok());
  EXPECT_FALSE(backend->ReadBlock(3, r.data()).ok());
  EXPECT_FALSE(backend->ReadBlock(5, r.data()).ok());
  // Rewriting an untrusted block re-earns trust.
  ASSERT_TRUE(backend->WriteBlock(3, w.data()).ok());
  EXPECT_TRUE(backend->ReadBlock(3, r.data()).ok());
}

TEST_P(BackendConformanceTest, FlushThenReopenPreservesContents) {
  if (!IsFileBacked(GetParam())) {
    GTEST_SKIP() << "reopen durability applies to the file-backed kinds";
  }
  std::string path = NewPath("reopen");
  std::filesystem::remove(path);
  {
    BackendFileOptions opts;
    opts.path = path;
    opts.unlink_on_close = false;
    MAKE_BACKEND_OR_SKIP(backend, opts);
    AlignedBuffer a = PatternBlock(0x61), b = PatternBlock(0x62);
    ASSERT_TRUE(backend->WriteBlock(0, a.data()).ok());
    ASSERT_TRUE(backend->WriteBlock(3, b.data()).ok());
    ASSERT_TRUE(backend->Flush().ok());
  }
  ASSERT_TRUE(std::filesystem::exists(path));
  {
    BackendFileOptions opts;
    opts.path = path;
    opts.unlink_on_close = false;
    opts.reuse_existing = true;
    MAKE_BACKEND_OR_SKIP(backend, opts);
    AlignedBuffer r(kBlock);
    ASSERT_TRUE(backend->ReadBlock(0, r.data()).ok());
    EXPECT_EQ(r.data()[9], 0x61);
    ASSERT_TRUE(backend->ReadBlock(3, r.data()).ok());
    EXPECT_EQ(r.data()[9], 0x62);
    // Beyond the reopened extent: never written.
    EXPECT_FALSE(backend->ReadBlock(64, r.data()).ok());
  }
  std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendConformanceTest,
                         ::testing::Values(BackendKind::kMemory,
                                           BackendKind::kFile,
                                           BackendKind::kDirect,
                                           BackendKind::kUring,
                                           BackendKind::kMmap),
                         [](const auto& info) {
                           return std::string(BackendKindName(info.param));
                         });

// ----------------------------------------------------- StripedBackend ----

TEST(StripedBackendTest, RoundTripAcrossStripes) {
  std::vector<std::unique_ptr<StorageBackend>> children;
  for (int i = 0; i < 3; ++i) {
    children.push_back(std::make_unique<MemoryBackend>(kBlock));
  }
  StripedBackend striped(std::move(children), kBlock);
  AlignedBuffer r(kBlock);
  for (uint64_t b = 0; b < 10; ++b) {
    AlignedBuffer w = PatternBlock(static_cast<uint8_t>(b + 1));
    ASSERT_TRUE(striped.WriteBlock(b, w.data()).ok());
  }
  for (uint64_t b = 0; b < 10; ++b) {
    ASSERT_TRUE(striped.ReadBlock(b, r.data()).ok());
    EXPECT_EQ(r.data()[123], static_cast<uint8_t>(b + 1));
  }
  EXPECT_FALSE(striped.ReadBlock(10, r.data()).ok());
}

TEST(StripedBackendTest, CapacityIsSummed) {
  std::vector<std::unique_ptr<StorageBackend>> children;
  for (int i = 0; i < 4; ++i) {
    children.push_back(std::make_unique<MemoryBackend>(kBlock));
  }
  StripedBackend striped(std::move(children), kBlock);
  EXPECT_EQ(striped.queue_capacity(), 4u);
}

TEST(StripedBackendTest, FileStripesViaBlockManager) {
  BlockManager::Options options = SmallBm(2);
  options.backend = BackendKind::kFile;
  options.file_dir = std::filesystem::temp_directory_path().string();
  options.pe_id = 78;
  options.files_per_disk = 3;
  BlockManager bm(options);
  std::vector<BlockId> ids = bm.AllocateMany(12);
  for (size_t i = 0; i < ids.size(); ++i) {
    AlignedBuffer w = PatternBlock(static_cast<uint8_t>(i + 1));
    bm.WriteSync(ids[i], w.data());
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    AlignedBuffer r(kBlock);
    bm.ReadSync(ids[i], r.data());
    EXPECT_EQ(r.data()[0], static_cast<uint8_t>(i + 1));
  }
}

// --------------------------------------------------- queue-depth gauges ----

TEST(VirtualDiskTest, QueueDepthGaugesPopulate) {
  VirtualDisk disk(std::make_unique<MemoryBackend>(kBlock), {});
  AlignedBuffer buf = PatternBlock(1);
  for (uint64_t b = 0; b < 8; ++b) disk.WriteAsync(b, buf.data()).WaitOk();
  disk.Drain();
  IoStatsSnapshot stats = disk.Stats();
  EXPECT_GE(stats.queue_depth_peak, 1u);
  EXPECT_GE(stats.queue_depth_sum, stats.writes);
  EXPECT_GT(stats.submit_complete_ns, 0u);
  EXPECT_GE(stats.mean_queue_depth(), 1.0);

  disk.ResetQueueDepthPeak();
  EXPECT_EQ(disk.Stats().queue_depth_peak, 0u);
}

TEST(VirtualDiskTest, FlushDrainsAndSucceeds) {
  VirtualDisk disk(std::make_unique<MemoryBackend>(kBlock), {});
  AlignedBuffer buf = PatternBlock(2);
  std::vector<Request> reqs;
  for (uint64_t b = 0; b < 16; ++b) {
    reqs.push_back(disk.WriteAsync(b, buf.data()));
  }
  EXPECT_TRUE(disk.Flush().ok());
  for (Request& r : reqs) EXPECT_TRUE(r.done());
}

TEST(RequestTest, WaitAllReportsFirstErrorAfterAllComplete) {
  VirtualDisk disk(std::make_unique<MemoryBackend>(kBlock), {});
  AlignedBuffer w = PatternBlock(3), r(kBlock);
  disk.WriteAsync(0, w.data()).WaitOk();
  std::vector<Request> reqs;
  reqs.push_back(disk.ReadAsync(0, r.data()));
  reqs.push_back(disk.ReadAsync(99, r.data()));  // never written: fails
  reqs.push_back(disk.ReadAsync(0, r.data()));
  Status s = WaitAll(reqs);
  EXPECT_FALSE(s.ok());
  // Every request settled even though one failed — WaitAll must not
  // abandon in-flight requests on the first error.
  for (Request& req : reqs) EXPECT_TRUE(req.done());
}

}  // namespace
}  // namespace demsort::io
