// Cost model sanity: monotonicity in volumes, the documented phase
// composition rules, and the paper's bandwidth-degradation curve.
#include <gtest/gtest.h>

#include "core/phase_stats.h"
#include "sim/cost_model.h"

namespace demsort::sim {
namespace {

using core::Phase;
using core::PhaseStats;

PhaseStats MakeStats(double io_s, uint64_t sent, uint64_t recv,
                     uint64_t sorted, uint64_t merged) {
  PhaseStats s;
  s.io_busy_max_disk_s = io_s;
  s.net.bytes_sent = sent;
  s.net.bytes_received = recv;
  s.net.messages_sent = 1;
  s.elements_sorted = sorted;
  s.elements_merged = merged;
  s.merge_ways = 8;
  return s;
}

TEST(ClusterModelTest, BandwidthDegrades) {
  ClusterModel m;
  EXPECT_DOUBLE_EQ(m.NetBandwidthMBs(1), 1300.0);
  EXPECT_DOUBLE_EQ(m.NetBandwidthMBs(8), 1300.0);
  EXPECT_LT(m.NetBandwidthMBs(16), 1300.0);
  EXPECT_GE(m.NetBandwidthMBs(64), 400.0);
  EXPECT_DOUBLE_EQ(m.NetBandwidthMBs(200), 400.0);
}

TEST(CostModelTest, RunFormationOverlapsIoWithComputeAndComm) {
  CostModel model;
  // I/O-bound case: total == io.
  PhaseTime t1 = model.PhaseSeconds(Phase::kRunFormation,
                                    MakeStats(10.0, 1000, 1000, 0, 0), 4);
  EXPECT_DOUBLE_EQ(t1.total_s, 10.0);
  // Compute-bound case: total == cpu + comm > io.
  PhaseTime t2 = model.PhaseSeconds(
      Phase::kRunFormation,
      MakeStats(0.001, 4000000000ull, 4000000000ull, 1000000000ull, 0), 4);
  EXPECT_GT(t2.total_s, t2.io_s);
  EXPECT_NEAR(t2.total_s, t2.cpu_s + t2.comm_s, 1e-9);
}

TEST(CostModelTest, AllToAllIsMaxOfIoAndComm) {
  CostModel model;
  PhaseTime t = model.PhaseSeconds(Phase::kAllToAll,
                                   MakeStats(5.0, 1000, 1000, 0, 0), 4);
  EXPECT_DOUBLE_EQ(t.total_s, 5.0);
  PhaseTime t2 = model.PhaseSeconds(
      Phase::kAllToAll, MakeStats(0.1, 40000000000ull, 0, 0, 0), 64);
  EXPECT_GT(t2.comm_s, t2.io_s);
  EXPECT_DOUBLE_EQ(t2.total_s, t2.comm_s);
}

TEST(CostModelTest, MergeOverlapsIoWithComputePlusComm) {
  CostModel model;
  // I/O-bound merge (canonical: no communication).
  PhaseTime t = model.PhaseSeconds(Phase::kFinalMerge,
                                   MakeStats(3.0, 0, 0, 0, 100), 4);
  EXPECT_DOUBLE_EQ(t.total_s, 3.0);
  // Communication-bound merge (striped batch merge).
  PhaseTime t2 = model.PhaseSeconds(
      Phase::kFinalMerge, MakeStats(0.1, 40'000'000'000ull, 0, 0, 100), 4);
  EXPECT_GT(t2.total_s, t2.io_s);
  EXPECT_NEAR(t2.total_s, t2.cpu_s + t2.comm_s, 1e-9);
}

TEST(CostModelTest, MonotoneInIoVolume) {
  CostModel model;
  double prev = 0;
  for (double io = 1.0; io < 100.0; io *= 2) {
    PhaseTime t = model.PhaseSeconds(Phase::kFinalMerge,
                                     MakeStats(io, 0, 0, 0, 0), 4);
    EXPECT_GT(t.total_s, prev);
    prev = t.total_s;
  }
}

TEST(CostModelTest, ClusterTimeIsMaxOverPes) {
  CostModel model;
  std::vector<core::SortReport> reports(2);
  reports[0].num_pes = 2;
  reports[1].num_pes = 2;
  reports[0].phase[static_cast<int>(Phase::kFinalMerge)] =
      MakeStats(1.0, 0, 0, 0, 0);
  reports[1].phase[static_cast<int>(Phase::kFinalMerge)] =
      MakeStats(9.0, 0, 0, 0, 0);
  PhaseTime t = model.ClusterPhaseSeconds(Phase::kFinalMerge, reports);
  EXPECT_DOUBLE_EQ(t.total_s, 9.0);
  EXPECT_GT(model.TotalSeconds(reports), 9.0 - 1e-12);
}

TEST(CostModelTest, SelectionChargesLatencyPerRound) {
  CostModel model;
  PhaseStats s;
  s.selection_rounds = 1000;
  PhaseTime t = model.PhaseSeconds(Phase::kMultiwaySelection, s, 4);
  EXPECT_NEAR(t.total_s, 1000 * model.cluster().alpha_s, 1e-9);
}

}  // namespace
}  // namespace demsort::sim
