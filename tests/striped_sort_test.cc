// GLOBALSTRIPEDMERGESORT (§III): output must be a sorted permutation laid
// out block-striped over all P*D disks, for all P / size / distribution
// combinations, and its communication volume must be a multiple of
// CANONICALMERGESORT's (the paper's §III vs §IV contrast).
#include <gtest/gtest.h>

#include <mutex>
#include <tuple>

#include "core/canonical_mergesort.h"
#include "core/striped_mergesort.h"
#include "test_util.h"
#include "workload/generators.h"
#include "workload/validator.h"

namespace demsort::core {
namespace {

using workload::Distribution;

class StripedSortParamTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t, Distribution>> {
};

TEST_P(StripedSortParamTest, SortsToValidStripedStream) {
  auto [P, n, dist] = GetParam();
  SortConfig config = test::SmallConfig();
  test::RunPes(P, config, [&](PeContext& ctx, const SortConfig& cfg) {
    auto gen = workload::GenerateKV16(ctx.bm, dist, n, ctx.rank(), P,
                                      cfg.seed);
    StripedSortOutput<KV16> out =
        StripedMergeSort<KV16>(ctx, cfg, gen.input);
    EXPECT_EQ(out.stream.total_elements, static_cast<uint64_t>(P) * n);
    auto v = workload::ValidateStripedCollective<KV16>(
        ctx, out.stream.my_blocks, out.stream.total_elements, gen.checksum);
    EXPECT_TRUE(v.locally_sorted) << v.ToString();
    EXPECT_TRUE(v.boundaries_ok) << v.ToString();
    EXPECT_TRUE(v.permutation_ok) << v.ToString();
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StripedSortParamTest,
    ::testing::Combine(
        ::testing::Values(1, 2, 3, 4),
        ::testing::Values<uint64_t>(100, 2048, 5000),
        ::testing::Values(Distribution::kUniform,
                          Distribution::kWorstCaseLocal,
                          Distribution::kReversedRanges,
                          Distribution::kAllEqual, Distribution::kZipf)));

TEST(StripedSortTest, BlocksAreOwnedByStripe) {
  const int P = 4;
  SortConfig config = test::SmallConfig();
  test::RunPes(P, config, [&](PeContext& ctx, const SortConfig& cfg) {
    auto gen = workload::GenerateKV16(ctx.bm, Distribution::kUniform, 2048,
                                      ctx.rank(), P, cfg.seed);
    auto out = StripedMergeSort<KV16>(ctx, cfg, gen.input);
    uint64_t stripe = static_cast<uint64_t>(P) * cfg.disks_per_pe;
    for (const auto& [g, id] : out.stream.my_blocks) {
      EXPECT_EQ(static_cast<int>((g % stripe) / cfg.disks_per_pe),
                ctx.rank());
      EXPECT_EQ(id.disk, static_cast<uint32_t>(g % stripe % cfg.disks_per_pe));
    }
    // Ownership counts are balanced to within one stripe period.
    uint64_t mine = out.stream.my_blocks.size();
    uint64_t max = ctx.comm->AllreduceMax<uint64_t>(mine);
    uint64_t min = ctx.comm->AllreduceMin<uint64_t>(mine);
    EXPECT_LE(max - min, cfg.disks_per_pe + 1);
  });
}

TEST(StripedSortTest, CommunicatesSeveralTimesMoreThanCanonical) {
  // §III vs §IV: the striped algorithm moves the data ~4x over the network
  // (sort + striped write, twice); canonical moves it ~once.
  const int P = 4;
  const uint64_t n = 4096;
  uint64_t striped_bytes = 0, canonical_bytes = 0;
  for (int which = 0; which < 2; ++which) {
    SortConfig config = test::SmallConfig();
    auto stats = net::Cluster::RunWithStats(P, [&](net::Comm& comm) {
      PeResources resources(&comm, config);
      PeContext& ctx = resources.ctx();
      auto gen = workload::GenerateKV16(ctx.bm, Distribution::kUniform, n,
                                        ctx.rank(), P, config.seed);
      if (which == 0) {
        StripedMergeSort<KV16>(ctx, config, gen.input);
      } else {
        CanonicalMergeSort<KV16>(ctx, config, gen.input);
      }
    });
    uint64_t sum = 0;
    for (auto& s : stats) sum += s.bytes_sent;
    (which == 0 ? striped_bytes : canonical_bytes) = sum;
  }
  EXPECT_GT(striped_bytes, canonical_bytes * 2);
}

TEST(StripedSortTest, EmptyAndTinyInputs) {
  const int P = 2;
  SortConfig config = test::SmallConfig();
  test::RunPes(P, config, [&](PeContext& ctx, const SortConfig& cfg) {
    uint64_t n = ctx.rank() == 0 ? 3 : 0;
    auto gen = workload::GenerateKV16(ctx.bm, Distribution::kUniform, n,
                                      ctx.rank(), P, cfg.seed);
    auto out = StripedMergeSort<KV16>(ctx, cfg, gen.input);
    EXPECT_EQ(out.stream.total_elements, 3u);
    auto v = workload::ValidateStripedCollective<KV16>(
        ctx, out.stream.my_blocks, out.stream.total_elements, gen.checksum);
    EXPECT_TRUE(v.ok()) << v.ToString();
  });
}

}  // namespace
}  // namespace demsort::core
