// The transport layer contract, exercised identically against both
// implementations: the in-process Fabric and the TCP socket transport.
// Plus TCP-specific wire coverage (loopback echo, out-of-order tag
// matching, 64-bit frame lengths), the Fabric's bounded-channel
// backpressure, the streaming Alltoallv / pairwise-schedule conformance
// suite, and receiver-side backpressure (channel cap / reader watermark)
// pause-resume over both backends.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <span>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "net/cluster.h"
#include "net/comm.h"
#include "net/hierarchical_transport.h"
#include "net/tcp_transport.h"

namespace demsort::net {
namespace {

void RunWith(TransportKind kind, int num_pes,
             const Cluster::PeBody& body) {
  Cluster::Options options;
  options.num_pes = num_pes;
  RunOverTransport(kind, options, body);
}

class TransportParamTest
    : public ::testing::TestWithParam<std::tuple<TransportKind, int>> {
 protected:
  TransportKind kind() const { return std::get<0>(GetParam()); }
  int pes() const { return std::get<1>(GetParam()); }
};

// ------------------------------------------------- pt2pt, both fabrics ----

TEST_P(TransportParamTest, IsendIrecvRoundTrip) {
  if (pes() < 2) GTEST_SKIP();
  RunWith(kind(), pes(), [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<uint64_t> data(1000);
      std::iota(data.begin(), data.end(), 7);
      SendRequest sr =
          comm.Isend(1, 3, data.data(), data.size() * sizeof(uint64_t));
      // Isend copies: the buffer is reusable immediately.
      std::fill(data.begin(), data.end(), 0);
      sr.Wait();
    } else if (comm.rank() == 1) {
      RecvRequest rr = comm.Irecv(0, 3);
      std::vector<uint8_t> bytes = rr.Take();
      ASSERT_EQ(bytes.size(), 1000 * sizeof(uint64_t));
      const uint64_t* v = reinterpret_cast<const uint64_t*>(bytes.data());
      for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(v[i], static_cast<uint64_t>(i + 7));
      }
    }
  });
}

TEST_P(TransportParamTest, TagMatchingOutOfOrder) {
  if (pes() < 2) GTEST_SKIP();
  RunWith(kind(), pes(), [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.SendValue<int>(1, /*tag=*/1, 111);
      comm.SendValue<int>(1, /*tag=*/2, 222);
      comm.SendValue<int>(1, /*tag=*/3, 333);
    } else if (comm.rank() == 1) {
      // Receive in reverse send order; matching must be by tag.
      EXPECT_EQ(comm.RecvValue<int>(0, 3), 333);
      EXPECT_EQ(comm.RecvValue<int>(0, 2), 222);
      EXPECT_EQ(comm.RecvValue<int>(0, 1), 111);
    }
  });
}

TEST_P(TransportParamTest, FifoPerSourceAndTag) {
  if (pes() < 2) GTEST_SKIP();
  RunWith(kind(), pes(), [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 200; ++i) comm.SendValue<int>(1, 5, i);
    } else if (comm.rank() == 1) {
      for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(comm.RecvValue<int>(0, 5), i);
      }
    }
  });
}

TEST_P(TransportParamTest, EmptyAndSelfMessages) {
  RunWith(kind(), pes(), [](Comm& comm) {
    comm.SendValue<uint64_t>(comm.rank(), 11, 42);  // self-send
    EXPECT_EQ(comm.RecvValue<uint64_t>(comm.rank(), 11), 42u);
    if (comm.size() >= 2) {
      if (comm.rank() == 0) {
        comm.Send(1, 9, nullptr, 0);
      } else if (comm.rank() == 1) {
        EXPECT_TRUE(comm.Recv(0, 9).empty());
      }
    }
  });
}

TEST_P(TransportParamTest, PostedReceiveCompletesOnArrival) {
  if (pes() < 2) GTEST_SKIP();
  RunWith(kind(), pes(), [](Comm& comm) {
    if (comm.rank() == 1) {
      RecvRequest rr = comm.Irecv(0, 77);  // posted before the send exists
      comm.SendValue<int>(0, 78, 1);       // unblock the sender
      std::vector<uint8_t> bytes = rr.Take();
      EXPECT_EQ(bytes.size(), sizeof(int));
    } else if (comm.rank() == 0) {
      comm.RecvValue<int>(1, 78);
      comm.SendValue<int>(1, 77, 5);
    }
  });
}

// ------------------------------------------- collectives, both fabrics ----
// The same SPMD body runs over the in-process mailboxes and over real
// sockets — the acceptance gate for the pluggable transport.

TEST_P(TransportParamTest, CollectiveSuite) {
  RunWith(kind(), pes(), [](Comm& comm) {
    const int P = comm.size();
    const int me = comm.rank();

    comm.Barrier();

    for (int root = 0; root < P; ++root) {
      uint64_t value = me == root ? 1000 + root : 0;
      EXPECT_EQ(comm.BroadcastValue<uint64_t>(root, value), 1000u + root);
    }

    uint64_t n = P;
    EXPECT_EQ(comm.AllreduceSum<uint64_t>(me + 1), n * (n + 1) / 2);
    EXPECT_EQ(comm.AllreduceMax<uint64_t>(me + 1), n);
    EXPECT_EQ(comm.AllreduceMin<uint64_t>(me + 1), 1u);
    EXPECT_FALSE(comm.AllreduceAnd(me != 0));

    std::vector<int> gathered = comm.Allgather<int>(me * 10);
    ASSERT_EQ(gathered.size(), static_cast<size_t>(P));
    for (int p = 0; p < P; ++p) EXPECT_EQ(gathered[p], p * 10);

    std::vector<uint32_t> mine(me);  // rank i contributes i entries
    for (int i = 0; i < me; ++i) mine[i] = me * 100 + i;
    auto all = comm.AllgatherV(mine);
    for (int p = 0; p < P; ++p) {
      ASSERT_EQ(all[p].size(), static_cast<size_t>(p));
      for (int i = 0; i < p; ++i) {
        EXPECT_EQ(all[p][i], static_cast<uint32_t>(p * 100 + i));
      }
    }

    std::vector<std::vector<uint32_t>> sends(P);
    for (int d = 0; d < P; ++d) sends[d].assign(me + d, me * 1000 + d);
    auto recvd = comm.Alltoallv<uint32_t>(sends);
    for (int s = 0; s < P; ++s) {
      ASSERT_EQ(recvd[s].size(), static_cast<size_t>(s + me));
      for (uint32_t v : recvd[s]) {
        EXPECT_EQ(v, static_cast<uint32_t>(s * 1000 + me));
      }
    }

    uint64_t prefix = comm.ExclusiveScanSum(me + 1);
    uint64_t expect = 0;
    for (int p = 0; p < me; ++p) expect += p + 1;
    EXPECT_EQ(prefix, expect);
  });
}

TEST_P(TransportParamTest, LargeDirectAllgather) {
  // Above kAllgatherDirectThresholdBytes → the direct (nonblocking
  // rank-rotated) exchange path.
  RunWith(kind(), pes(), [](Comm& comm) {
    std::vector<uint64_t> mine(8192, comm.rank() + 1);
    auto all = comm.AllgatherV(mine);
    for (int p = 0; p < comm.size(); ++p) {
      ASSERT_EQ(all[p].size(), 8192u);
      EXPECT_EQ(all[p][17], static_cast<uint64_t>(p + 1));
    }
  });
}

// ------------------------------------ streaming collective, both fabrics ----

/// Deterministic per-pair payload size: mixes zero-size payloads (whenever
/// (s + 2d) % 4 == 0 and s*d % 3 == 0) with sizes that are not chunk
/// multiples.
size_t StreamPayloadBytes(int src, int dst) {
  return static_cast<size_t>(((src + 2 * dst) % 4) * 137 +
                             ((src * dst) % 3));
}

uint8_t StreamPayloadByte(int src, int dst, size_t i) {
  return static_cast<uint8_t>(src * 31 + dst * 17 + i * 7);
}

/// The SPMD streaming-exchange body shared by several tests: every pair
/// exchanges its StreamPayloadBytes payload in `chunk`-size pieces and
/// verifies content, chunk bounds, size announcements, and exactly one
/// last-chunk marker per source. `options` defaults to the Comm defaults
/// (adaptive chunks, piggybacked credits); tests pass explicit modes to
/// pin one protocol variant.
void StreamExchangeBody(Comm& comm, size_t chunk, StreamOptions options = {}) {
  const int P = comm.size();
  const int me = comm.rank();
  options.chunk_bytes = chunk;
  const uint64_t max_chunk = comm.StreamMaxChunkBytes(options);
  std::vector<std::vector<uint8_t>> payloads(P);
  std::vector<std::span<const uint8_t>> spans(P);
  for (int d = 0; d < P; ++d) {
    payloads[d].resize(StreamPayloadBytes(me, d));
    for (size_t i = 0; i < payloads[d].size(); ++i) {
      payloads[d][i] = StreamPayloadByte(me, d, i);
    }
    spans[d] = std::span<const uint8_t>(payloads[d]);
  }
  std::vector<std::vector<uint8_t>> got(P);
  std::vector<int> lasts(P, 0);
  std::vector<uint64_t> announced(P, UINT64_MAX);
  comm.AlltoallvStream(
      spans,
      [&](int src, std::span<const uint8_t> data, bool last) {
        EXPECT_LE(data.size(), max_chunk);
        EXPECT_EQ(lasts[src], 0) << "chunk after last from " << src;
        got[src].insert(got[src].end(), data.begin(), data.end());
        if (last) ++lasts[src];
      },
      [&](int src, uint64_t bytes) { announced[src] = bytes; }, options);
  for (int s = 0; s < P; ++s) {
    ASSERT_EQ(got[s].size(), StreamPayloadBytes(s, me)) << "source " << s;
    EXPECT_EQ(announced[s], got[s].size());
    EXPECT_EQ(lasts[s], 1);
    for (size_t i = 0; i < got[s].size(); ++i) {
      ASSERT_EQ(got[s][i], StreamPayloadByte(s, me, i))
          << "source " << s << " byte " << i;
    }
  }
}

TEST_P(TransportParamTest, AlltoallvStreamDeliversChunkedPayloads) {
  RunWith(kind(), pes(), [](Comm& comm) { StreamExchangeBody(comm, 64); });
}

TEST_P(TransportParamTest, AlltoallvStreamChunkLargerThanPayload) {
  // Every payload fits one chunk (chunk == or > payload), including the
  // zero-payload pairs: still exactly one consumer call per source.
  RunWith(kind(), pes(), [](Comm& comm) { StreamExchangeBody(comm, 4096); });
}

TEST_P(TransportParamTest, AlltoallvStreamStandaloneCreditsAndFixedChunks) {
  // The PR 2 protocol variant (one standalone credit message per consumed
  // chunk, no resizing) must deliver identically — it is micro_net's
  // comparison baseline and the fallback for asymmetric exchanges.
  RunWith(kind(), pes(), [](Comm& comm) {
    StreamOptions options;
    options.chunk_mode = StreamChunkMode::kFixed;
    options.credit_mode = StreamCreditMode::kStandalone;
    StreamExchangeBody(comm, 64, options);
  });
}

TEST_P(TransportParamTest, AllgatherVStreamDeliversAllContributions) {
  // The streaming allgather: every PE's contribution (rank-dependent size
  // and content, including rank 0's empty one) arrives chunked at every
  // PE, own contribution included.
  RunWith(kind(), pes(), [](Comm& comm) {
    const int P = comm.size();
    const int me = comm.rank();
    std::vector<uint8_t> mine(static_cast<size_t>(200 * me));
    for (size_t i = 0; i < mine.size(); ++i) {
      mine[i] = static_cast<uint8_t>(me * 41 + i * 3);
    }
    std::vector<std::vector<uint8_t>> got(P);
    std::vector<int> lasts(P, 0);
    std::vector<uint64_t> announced(P, UINT64_MAX);
    comm.AllgatherVStream(
        std::span<const uint8_t>(mine),
        [&](int src, std::span<const uint8_t> data, bool last) {
          EXPECT_EQ(lasts[src], 0);
          got[src].insert(got[src].end(), data.begin(), data.end());
          if (last) ++lasts[src];
        },
        [&](int src, uint64_t bytes) { announced[src] = bytes; },
        StreamOptions{.chunk_bytes = 64});
    for (int s = 0; s < P; ++s) {
      ASSERT_EQ(got[s].size(), static_cast<size_t>(200 * s)) << "src " << s;
      EXPECT_EQ(announced[s], got[s].size());
      EXPECT_EQ(lasts[s], 1);
      for (size_t i = 0; i < got[s].size(); ++i) {
        ASSERT_EQ(got[s][i], static_cast<uint8_t>(s * 41 + i * 3));
      }
    }
  });
}

TEST_P(TransportParamTest, AllgatherVStreamedTypedMatchesBufferedAllgatherV) {
  RunWith(kind(), pes(), [](Comm& comm) {
    const int me = comm.rank();
    std::vector<uint32_t> mine(static_cast<size_t>(me * 3 + 1));
    for (size_t i = 0; i < mine.size(); ++i) {
      mine[i] = static_cast<uint32_t>(me * 1000 + i);
    }
    auto streamed = comm.AllgatherVStreamed<uint32_t>(mine);
    auto buffered = comm.AllgatherV(mine);
    ASSERT_EQ(streamed.size(), buffered.size());
    for (size_t p = 0; p < streamed.size(); ++p) {
      EXPECT_EQ(streamed[p], buffered[p]) << "src " << p;
    }
  });
}

TEST_P(TransportParamTest, PiggybackedCreditsRideDataFrames) {
  if (pes() < 2) GTEST_SKIP();
  // Symmetric equal payloads spanning many credit windows: nearly every
  // credit should ride a reverse data frame. Each PE asserts on its own
  // counters: piggybacked credits dominate, standalone credit messages
  // stay near the protocol floor (the mandatory per-stream close plus
  // occasional liveness flushes), far below one message per chunk.
  RunWith(kind(), pes(), [](Comm& comm) {
    const int P = comm.size();
    constexpr size_t kChunk = 1024;
    const size_t per_pair = 32 * Comm::kStreamSendCreditChunks * kChunk;
    std::vector<uint8_t> payload(per_pair, static_cast<uint8_t>(comm.rank()));
    std::vector<std::span<const uint8_t>> spans(
        P, std::span<const uint8_t>(payload));
    NetStatsSnapshot before = comm.StatsSnapshot();
    std::vector<uint64_t> got(P, 0);
    StreamOptions options;
    options.chunk_bytes = kChunk;
    options.chunk_mode = StreamChunkMode::kFixed;
    options.credit_mode = StreamCreditMode::kPiggyback;
    comm.AlltoallvStream(
        spans,
        [&](int src, std::span<const uint8_t> data, bool) {
          got[src] += data.size();
        },
        nullptr, options);
    for (int s = 0; s < P; ++s) EXPECT_EQ(got[s], per_pair);
    NetStatsSnapshot delta = comm.StatsSnapshot() - before;
    // Cluster-level accounting: under a node topology the leaders return
    // the credits for their whole node, so the counters concentrate on
    // them — the protocol property (credits ride data frames, standalone
    // messages stay the exception) is a property of the cluster total.
    const uint64_t cluster_piggy =
        comm.AllreduceSum<uint64_t>(delta.piggybacked_credits);
    const uint64_t cluster_ctrl =
        comm.AllreduceSum<uint64_t>(delta.credit_msgs);
    const uint64_t chunks_consumed = static_cast<uint64_t>(P) *
                                     static_cast<uint64_t>(P - 1) *
                                     (per_pair / kChunk);
    EXPECT_GT(cluster_piggy, chunks_consumed / 2)
        << "most credits should ride data frames";
    EXPECT_LT(cluster_ctrl, chunks_consumed / 4)
        << "standalone credit messages should be the exception";
  });
}

TEST_P(TransportParamTest, AlltoallvStreamAllEmptyPayloads) {
  RunWith(kind(), pes(), [](Comm& comm) {
    std::vector<std::span<const uint8_t>> spans(comm.size());
    std::vector<int> calls(comm.size(), 0);
    comm.AlltoallvStream(
        spans,
        [&](int src, std::span<const uint8_t> data, bool last) {
          EXPECT_TRUE(data.empty());
          EXPECT_TRUE(last);
          ++calls[src];
        });
    for (int s = 0; s < comm.size(); ++s) EXPECT_EQ(calls[s], 1);
  });
}

TEST_P(TransportParamTest, AlltoallvStreamPayloadLargerThanSendWindow) {
  if (pes() < 2) GTEST_SKIP();
  // Payloads far above the send window: the windowed sender must keep
  // consuming while it waits for credit, or the exchange would deadlock.
  RunWith(kind(), pes(), [](Comm& comm) {
    comm.set_send_window_bytes(8 * 1024);
    const size_t n = 192 * 1024;
    const size_t chunk = 4096;
    std::vector<uint8_t> payload(n);
    for (size_t i = 0; i < n; ++i) {
      payload[i] = static_cast<uint8_t>(comm.rank() * 13 + i * 11);
    }
    std::vector<std::span<const uint8_t>> spans(
        comm.size(), std::span<const uint8_t>(payload));
    std::vector<uint64_t> got_bytes(comm.size(), 0);
    std::vector<int> bad(comm.size(), 0);
    comm.AlltoallvStream(
        spans,
        [&](int src, std::span<const uint8_t> data, bool last) {
          (void)last;
          for (size_t i = 0; i < data.size(); ++i) {
            if (data[i] != static_cast<uint8_t>(
                               src * 13 + (got_bytes[src] + i) * 11)) {
              ++bad[src];
            }
          }
          got_bytes[src] += data.size();
        },
        nullptr, chunk);
    for (int s = 0; s < comm.size(); ++s) {
      EXPECT_EQ(got_bytes[s], n) << "source " << s;
      EXPECT_EQ(bad[s], 0) << "source " << s;
    }
  });
}

TEST_P(TransportParamTest, AlltoallvPairwiseMatchesFullMesh) {
  RunWith(kind(), pes(), [](Comm& comm) {
    const int P = comm.size();
    const int me = comm.rank();
    comm.set_alltoallv_algo(AlltoallAlgo::kPairwise);
    std::vector<std::vector<uint32_t>> sends(P);
    for (int d = 0; d < P; ++d) sends[d].assign(me + d, me * 1000 + d);
    auto recvd = comm.Alltoallv<uint32_t>(sends);
    for (int s = 0; s < P; ++s) {
      ASSERT_EQ(recvd[s].size(), static_cast<size_t>(s + me));
      for (uint32_t v : recvd[s]) {
        EXPECT_EQ(v, static_cast<uint32_t>(s * 1000 + me));
      }
    }
  });
}

// ------------------------------ receiver-side backpressure conformance ----

/// Runs `body` with receiver-side backpressure configured the way each
/// backend expresses it — per-channel byte cap on the fabric, reader
/// watermark on TCP — and returns the per-PE stats.
std::vector<NetStatsSnapshot> RunWithBackpressure(TransportKind kind,
                                                  int num_pes, size_t bound,
                                                  const Cluster::PeBody& body) {
  if (kind == TransportKind::kTcp) {
    TcpTransport::Options options;
    options.recv_watermark_bytes = bound;
    return TcpCluster::RunWithStats(num_pes, body, options);
  }
  if (kind == TransportKind::kHier) {
    // Both halves of the hierarchical backpressure chain: the demux pause
    // at the PE mailbox watermark AND a bounded uplink channel behind it.
    HierCluster::Options options;
    options.topology = Topology::Uniform(num_pes, 2);
    options.uplink_channel_cap_bytes = bound;
    options.recv_watermark_bytes = bound;
    return HierCluster::Run(options, body).stats;
  }
  Cluster::Options options;
  options.num_pes = num_pes;
  options.channel_cap_bytes = bound;
  return Cluster::Run(options, body).stats;
}

TEST_P(TransportParamTest, BackpressurePausesAndResumesAtWatermark) {
  if (pes() < 2) GTEST_SKIP();
  // Rank 0 fires a burst far above the bound at a sleeping receiver: the
  // fabric parks sends at the channel cap / the TCP reader pauses at the
  // mailbox watermark, so the receiver's transport-held bytes never exceed
  // bound + one frame. Completion of every send after the receiver drains
  // is the resume half of the contract.
  constexpr size_t kFrame = 4096;
  constexpr size_t kBound = 16 * 1024;
  constexpr int kFrames = 64;
  auto stats = RunWithBackpressure(kind(), pes(), kBound, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<uint8_t> frame(kFrame, 7);
      std::vector<SendRequest> sends;
      sends.reserve(kFrames);
      for (int i = 0; i < kFrames; ++i) {
        sends.push_back(comm.Isend(1, 5, frame.data(), frame.size()));
      }
      for (SendRequest& s : sends) s.Wait();
    } else if (comm.rank() == 1) {
      // Give the burst time to hit the backpressure before draining.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      uint64_t total = 0;
      for (int i = 0; i < kFrames; ++i) total += comm.Recv(0, 5).size();
      EXPECT_EQ(total, uint64_t{kFrames} * kFrame);
    }
  });
  EXPECT_LE(stats[1].recv_buffer_peak_bytes, kBound + kFrame);
  EXPECT_GE(stats[1].bytes_received, uint64_t{kFrames} * kFrame);
}

TEST_P(TransportParamTest, AlltoallvStreamBoundedUnderBackpressure) {
  if (pes() < 2) GTEST_SKIP();
  // The full streaming collective under tight receiver-side backpressure:
  // must complete (no deadlock between parked sends, credits, and paused
  // readers) and keep every PE's transport-held bytes at
  // O(credit x chunk x sources), far below the exchanged volume.
  constexpr size_t kChunk = 2048;
  constexpr size_t kPerPair = 64 * 1024;
  const int P = pes();
  auto stats = RunWithBackpressure(
      kind(), P, /*bound=*/4 * kChunk, [&](Comm& comm) {
        std::vector<uint8_t> payload(kPerPair);
        for (size_t i = 0; i < payload.size(); ++i) {
          payload[i] = static_cast<uint8_t>(comm.rank() + i);
        }
        std::vector<std::span<const uint8_t>> spans(
            comm.size(), std::span<const uint8_t>(payload));
        std::vector<uint64_t> got(comm.size(), 0);
        StreamOptions options;
        options.chunk_bytes = kChunk;
        options.chunk_mode = StreamChunkMode::kFixed;  // pin the bound
        comm.AlltoallvStream(
            spans,
            [&](int src, std::span<const uint8_t> data, bool last) {
              (void)last;
              got[src] += data.size();
            },
            nullptr, options);
        for (int s = 0; s < comm.size(); ++s) EXPECT_EQ(got[s], kPerPair);
      });
  // Credit window + posted lookahead, each chunk message carrying its
  // frame header, plus the stream's size header and a few parked credit
  // messages per source.
  const uint64_t per_source =
      (Comm::kStreamSendCreditChunks + 2) *
          (kChunk + sizeof(StreamChunkHeader)) +
      sizeof(StreamSizeHeader) + 8 * sizeof(StreamCreditMsg);
  for (int pe = 0; pe < P; ++pe) {
    EXPECT_LE(stats[pe].recv_buffer_peak_bytes,
              static_cast<uint64_t>(P - 1) * per_source)
        << "PE " << pe;
  }
}

TEST_P(TransportParamTest, AdaptiveChunksKeepReceiveBufferBound) {
  if (pes() < 4) GTEST_SKIP();
  // The adaptive-chunk memory regression (uncapped transport, so the
  // streaming credit protocol is the ONLY thing bounding buffering): even
  // while the controller resizes chunks under uneven consumer delays, the
  // receive-side peak stays within credits x MAX chunk x sources — the
  // documented bound — rather than drifting toward O(payload).
  constexpr size_t kChunk = 1024;
  constexpr size_t kMaxChunk = 4 * kChunk;
  const int P = pes();
  const size_t per_pair = 48 * kChunk;
  auto body = [&](Comm& comm) {
    StreamOptions options;
    options.chunk_bytes = kChunk;
    options.min_chunk_bytes = kChunk / 4;
    options.max_chunk_bytes = kMaxChunk;
    options.chunk_mode = StreamChunkMode::kAdaptive;
    std::vector<uint8_t> payload(per_pair, 5);
    std::vector<std::span<const uint8_t>> spans(
        P, std::span<const uint8_t>(payload));
    std::vector<uint64_t> got(P, 0);
    const int slow_src = (comm.rank() + 1) % P;
    comm.AlltoallvStream(
        spans,
        [&](int src, std::span<const uint8_t> data, bool) {
          if (src == slow_src) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          got[src] += data.size();
        },
        nullptr, options);
    for (int s = 0; s < P; ++s) EXPECT_EQ(got[s], per_pair);
  };
  std::vector<NetStatsSnapshot> stats;
  if (kind() == TransportKind::kTcp) {
    stats = TcpCluster::RunWithStats(P, body);
  } else if (kind() == TransportKind::kHier) {
    HierCluster::Options hier_options;
    hier_options.topology = Topology::Uniform(P, 2);
    stats = HierCluster::Run(hier_options, body).stats;
  } else {
    Cluster::Options cluster_options;
    cluster_options.num_pes = P;
    stats = Cluster::Run(cluster_options, body).stats;
  }
  const uint64_t per_source =
      (Comm::kStreamSendCreditChunks + 2) *
          (kMaxChunk + sizeof(StreamChunkHeader)) +
      sizeof(StreamSizeHeader) + 8 * sizeof(StreamCreditMsg);
  for (int pe = 0; pe < P; ++pe) {
    EXPECT_LE(stats[pe].recv_buffer_peak_bytes,
              static_cast<uint64_t>(P - 1) * per_source)
        << "PE " << pe;
  }
}

TEST(AdaptiveChunkControllerTest, ShrinksForSlowConsumerGrowsForFast) {
  // P = 2 over the in-process fabric: rank 1's consumer sleeps far beyond
  // the shrink threshold per chunk, so rank 0's per-destination chunk must
  // converge to the minimum; rank 0 consumes instantly, so rank 1's chunk
  // must grow beyond the initial size on its much larger payload.
  static constexpr size_t kBase = 4096;
  static constexpr size_t kMin = 512;
  static constexpr size_t kMax = 32 * 1024;
  Cluster::Run(2, [](Comm& comm) {
    StreamOptions options;
    options.chunk_bytes = kBase;
    options.min_chunk_bytes = kMin;
    options.max_chunk_bytes = kMax;
    options.chunk_mode = StreamChunkMode::kAdaptive;
    const int me = comm.rank();
    const int peer = 1 - me;
    // Rank 0 ships enough chunks to hit the floor; rank 1 ships enough to
    // climb several doublings.
    std::vector<uint8_t> payload(me == 0 ? 64 * 1024 : 1024 * 1024, 9);
    std::vector<std::span<const uint8_t>> spans(
        2, std::span<const uint8_t>(payload));
    std::vector<uint64_t> got(2, 0);
    comm.AlltoallvStream(
        spans,
        [&](int src, std::span<const uint8_t> data, bool) {
          if (me == 1 && src == 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(3));
          }
          got[src] += data.size();
        },
        nullptr, options);
    EXPECT_EQ(got[peer], peer == 0 ? 64u * 1024 : 1024u * 1024);
    if (me == 0) {
      // Every credit from the sleeping consumer arrived > 3 ms late.
      EXPECT_LE(comm.StreamPeerChunkBytes(1), kMin * 2);
    } else {
      // The fast side must have grown at least once over 1 MiB of chunks.
      EXPECT_GT(comm.StreamPeerChunkBytes(0), kBase);
    }
  });
}

TEST_P(TransportParamTest, AlltoallvStreamUnevenConsumersNoDeadlock) {
  if (pes() < 4) GTEST_SKIP();
  // Regression: the drain loop must keep consuming (and returning credits
  // to) every unfinished source while several are open. Hard-blocking on
  // one source there stops the credit flow to the others, and a cycle of
  // drain-blocked and credit-blocked PEs can close into a distributed
  // deadlock at P >= 4. Source-dependent consumer delays push PEs into
  // the drain loop at very different times, payloads span several credit
  // windows, and the backpressure bound sits BELOW one credit window so
  // credit frames also ride behind paused/parked delivery.
  constexpr size_t kChunk = 1024;
  const size_t per_pair = Comm::kStreamSendCreditChunks * 4 * kChunk;
  const int P = pes();
  RunWithBackpressure(kind(), P, /*bound=*/2 * kChunk, [&](Comm& comm) {
    std::vector<uint8_t> payload(per_pair);
    for (size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<uint8_t>(comm.rank() * 3 + i);
    }
    std::vector<std::span<const uint8_t>> spans(
        P, std::span<const uint8_t>(payload));
    std::vector<uint64_t> got(P, 0);
    const int slow_src = (comm.rank() + 1) % P;
    comm.AlltoallvStream(
        spans,
        [&](int src, std::span<const uint8_t> data, bool last) {
          (void)last;
          if (src == slow_src) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          got[src] += data.size();
        },
        nullptr, kChunk);
    for (int s = 0; s < P; ++s) EXPECT_EQ(got[s], per_pair);
  });
}

TEST(DegeneratePTest, CollectivesAtTrivialAndOddP) {
  // P = 1 (all self paths) and odd P = 3, 5, 7 (no XOR pairing; the
  // rotation schedules and the (rank - step) index arithmetic must hold
  // on their own, not by accident of power-of-two sizes), on BOTH
  // backends: Barrier, Broadcast from every root, the pairwise Alltoallv
  // rotation schedule, and AlltoallvStream.
  for (TransportKind kind :
       {TransportKind::kInProc, TransportKind::kTcp}) {
    for (int num_pes : {1, 3, 5, 7}) {
      SCOPED_TRACE(std::string(TransportKindName(kind)) + " P=" +
                   std::to_string(num_pes));
      RunWith(kind, num_pes, [](Comm& comm) {
        const int me = comm.rank();
        const int P = comm.size();
        comm.Barrier();
        for (int root = 0; root < P; ++root) {
          int got = comm.BroadcastValue<int>(root, me == root ? 41 + root : 0);
          EXPECT_EQ(got, 41 + root);
        }
        comm.Barrier();
        // Pairwise exchange: rotation partners at odd P, ragged sizes.
        std::vector<std::vector<uint32_t>> sends(P);
        for (int p = 0; p < P; ++p) {
          sends[p].assign(static_cast<size_t>(me + 1),
                          static_cast<uint32_t>(me * 100 + p));
        }
        auto received = comm.AlltoallvPairwise(sends);
        for (int p = 0; p < P; ++p) {
          ASSERT_EQ(received[p].size(), static_cast<size_t>(p + 1));
          for (uint32_t v : received[p]) {
            EXPECT_EQ(v, static_cast<uint32_t>(p * 100 + me));
          }
        }
        // Streaming exchange with rank-dependent payload sizes, under both
        // credit protocols (the tournament pairing (r - rank) mod P is the
        // schedule actually exercised at odd P — partner mutuality must
        // hold without the XOR shortcut).
        for (StreamCreditMode credit_mode :
             {StreamCreditMode::kPiggyback, StreamCreditMode::kStandalone}) {
          StreamOptions options;
          options.chunk_bytes = 256;
          options.credit_mode = credit_mode;
          std::vector<uint8_t> payload(static_cast<size_t>(512 * (me + 1)),
                                       static_cast<uint8_t>(me));
          std::vector<std::span<const uint8_t>> spans(
              P, std::span<const uint8_t>(payload));
          std::vector<uint64_t> got(P, 0);
          comm.AlltoallvStream(
              spans,
              [&](int src, std::span<const uint8_t> data, bool) {
                for (uint8_t b : data) {
                  EXPECT_EQ(b, static_cast<uint8_t>(src));
                }
                got[src] += data.size();
              },
              nullptr, options);
          for (int p = 0; p < P; ++p) {
            EXPECT_EQ(got[p], static_cast<uint64_t>(512 * (p + 1)));
          }
        }
        // Streaming allgather at the same degenerate sizes.
        {
          std::vector<uint32_t> mine(static_cast<size_t>(me + 1),
                                     static_cast<uint32_t>(1000 + me));
          auto all = comm.AllgatherVStreamed<uint32_t>(
              mine, StreamOptions{.chunk_bytes = 64});
          for (int p = 0; p < P; ++p) {
            ASSERT_EQ(all[p].size(), static_cast<size_t>(p + 1));
            for (uint32_t v : all[p]) {
              EXPECT_EQ(v, static_cast<uint32_t>(1000 + p));
            }
          }
        }
      });
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Transports, TransportParamTest,
    ::testing::Combine(::testing::Values(TransportKind::kInProc,
                                         TransportKind::kTcp,
                                         TransportKind::kHier),
                       ::testing::Values(1, 2, 3, 4, 8)),
    [](const auto& info) {
      return std::string(TransportKindName(std::get<0>(info.param))) + "_P" +
             std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------------------- TCP specifics ----

TEST(TcpTransportTest, RawLoopbackEcho) {
  // Teardown is collective (see tcp_transport.h), so each endpoint lives
  // and dies in its own thread, like real processes would.
  auto listeners = CreateLoopbackListeners(2);
  ASSERT_TRUE(listeners.ok()) << listeners.status().ToString();
  auto peers = LoopbackPeers(listeners.value());
  std::vector<uint8_t> ping = {1, 2, 3, 4, 5};
  std::vector<uint8_t> echoed;

  std::thread server([&] {
    auto t = TcpTransport::Connect(1, 2, listeners.value()[1].fd, peers);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    std::vector<uint8_t> msg = t.value()->Irecv(1, 0, 42).Take();
    t.value()->Isend(1, 0, 43, msg.data(), msg.size()).Wait();
  });
  std::thread client([&] {
    auto t = TcpTransport::Connect(0, 2, listeners.value()[0].fd, peers);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    t.value()->Isend(0, 1, 42, ping.data(), ping.size()).Wait();
    echoed = t.value()->Irecv(0, 1, 43).Take();
  });
  server.join();
  client.join();
  EXPECT_EQ(echoed, ping);
}

TEST(TcpTransportTest, StatsCountBytes) {
  auto stats = TcpCluster::RunWithStats(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<uint8_t> data(1000, 1);
      comm.Send(1, 1, data.data(), data.size());
    } else {
      comm.Recv(0, 1);
    }
  });
  EXPECT_EQ(stats[0].bytes_sent, 1000u);
  EXPECT_EQ(stats[1].bytes_received, 1000u);
  EXPECT_EQ(stats[1].bytes_sent, 0u);
}

TEST(TcpTransportTest, ManyInterleavedMessages) {
  TcpCluster::Run(4, [](Comm& comm) {
    for (int d = 0; d < comm.size(); ++d) {
      for (int i = 0; i < 50; ++i) {
        comm.SendValue<uint64_t>(d, 100 + i, comm.rank() * 10000 + i);
      }
    }
    for (int s = 0; s < comm.size(); ++s) {
      for (int i = 49; i >= 0; --i) {  // reverse order exercises matching
        EXPECT_EQ(comm.RecvValue<uint64_t>(s, 100 + i),
                  static_cast<uint64_t>(s * 10000 + i));
      }
    }
    comm.Barrier();
  });
}

TEST(TcpTransportTest, MultiMegabyteFrames) {
  // 64-bit frame lengths on the wire; chunked socket writes/reads.
  TcpCluster::Run(2, [](Comm& comm) {
    const size_t n = (32u << 20) + 13;  // deliberately unaligned
    if (comm.rank() == 0) {
      std::vector<uint8_t> data(n);
      for (size_t i = 0; i < n; ++i) data[i] = static_cast<uint8_t>(i * 31);
      comm.Send(1, 7, data.data(), data.size());
    } else {
      std::vector<uint8_t> data = comm.Recv(0, 7);
      ASSERT_EQ(data.size(), n);
      for (size_t i = 0; i < n; i += 4097) {
        ASSERT_EQ(data[i], static_cast<uint8_t>(i * 31)) << i;
      }
    }
  });
}

TEST(TcpTransportTest, Above4GiBCountAlltoallv) {
  // The >2^32-byte single-payload path — what the paper re-implemented
  // MPI_Alltoallv for. Needs ~9 GiB of RAM; opt in explicitly.
  if (std::getenv("DEMSORT_BIG_TESTS") == nullptr) {
    GTEST_SKIP() << "set DEMSORT_BIG_TESTS=1 to run the >4 GiB transfer";
  }
  TcpCluster::Run(2, [](Comm& comm) {
    const uint64_t n = (uint64_t{4} << 30) + (64u << 20);  // 4.0625 GiB
    std::vector<std::vector<uint8_t>> sends(2);
    if (comm.rank() == 0) {
      sends[1].resize(n);
      for (uint64_t i = 0; i < n; i += (1u << 20)) {
        sends[1][i] = static_cast<uint8_t>(i >> 20);
      }
      sends[1][n - 1] = 0xEE;
    }
    auto recvd = comm.Alltoallv<uint8_t>(sends);
    if (comm.rank() == 1) {
      ASSERT_EQ(recvd[0].size(), n);
      for (uint64_t i = 0; i < n; i += (1u << 20)) {
        ASSERT_EQ(recvd[0][i], static_cast<uint8_t>(i >> 20)) << i;
      }
      EXPECT_EQ(recvd[0][n - 1], 0xEE);
    }
  });
}

// --------------------------------------------- Fabric channel capping ----

TEST(FabricCapTest, SendParksUntilReceiverDrains) {
  Fabric::Options options;
  options.num_pes = 2;
  options.channel_cap_bytes = 1024;
  Fabric fabric(options);

  std::vector<uint8_t> block(1024, 1);
  SendRequest first = fabric.Isend(0, 1, 1, block.data(), block.size());
  EXPECT_TRUE(first.done());  // empty channel always admits
  SendRequest second = fabric.Isend(0, 1, 1, block.data(), block.size());
  EXPECT_FALSE(second.done());  // over the cap: parked

  std::vector<uint8_t> got = fabric.Recv(1, 0, 1);
  EXPECT_EQ(got.size(), 1024u);
  second.Wait();  // the drain admitted it
  EXPECT_TRUE(second.done());
  EXPECT_EQ(fabric.Recv(1, 0, 1).size(), 1024u);
  EXPECT_LE(fabric.max_channel_queued_bytes(), 1024u);
}

TEST(FabricCapTest, ParkedMessagesKeepFifoOrder) {
  Fabric::Options options;
  options.num_pes = 2;
  options.channel_cap_bytes = 8;
  Fabric fabric(options);
  for (int i = 0; i < 16; ++i) {
    fabric.Isend(0, 1, 1, &i, sizeof(i));
  }
  for (int i = 0; i < 16; ++i) {
    std::vector<uint8_t> bytes = fabric.Recv(1, 0, 1);
    int v;
    ASSERT_EQ(bytes.size(), sizeof(v));
    std::memcpy(&v, bytes.data(), sizeof(v));
    EXPECT_EQ(v, i);
  }
}

TEST(FabricCapTest, OutOfOrderTagReceiveUnblocksParkedSend) {
  // Regression: a message parked behind a full channel must be handed to a
  // LATER-posted receive for its tag even when an earlier message (with a
  // different tag) still occupies the cap — per-tag FIFO, not channel FIFO.
  Fabric::Options options;
  options.num_pes = 2;
  options.channel_cap_bytes = 1024;
  Fabric fabric(options);
  std::vector<uint8_t> block(1024, 1);
  SendRequest first = fabric.Isend(0, 1, /*tag=*/7, block.data(), 1024);
  EXPECT_TRUE(first.done());
  SendRequest second = fabric.Isend(0, 1, /*tag=*/8, block.data(), 1024);
  EXPECT_FALSE(second.done());  // cap full: parked

  // Receive tag 8 FIRST: must complete from the parked message.
  std::vector<uint8_t> tag8 = fabric.Recv(1, 0, /*tag=*/8);
  EXPECT_EQ(tag8.size(), 1024u);
  EXPECT_TRUE(second.done());
  EXPECT_EQ(fabric.Recv(1, 0, /*tag=*/7).size(), 1024u);
}

TEST(FabricCapTest, OversizedMessageStillAdmitted) {
  Fabric::Options options;
  options.num_pes = 2;
  options.channel_cap_bytes = 16;
  Fabric fabric(options);
  std::vector<uint8_t> big(4096, 7);
  SendRequest sr = fabric.Isend(0, 1, 1, big.data(), big.size());
  EXPECT_TRUE(sr.done());  // empty channel admits even > cap (no livelock)
  EXPECT_EQ(fabric.Recv(1, 0, 1).size(), 4096u);
}

TEST(FabricCapTest, SelfSendsExempt) {
  Fabric::Options options;
  options.num_pes = 1;
  options.channel_cap_bytes = 4;
  Fabric fabric(options);
  for (int i = 0; i < 8; ++i) {
    SendRequest sr = fabric.Isend(0, 0, 1, &i, sizeof(i));
    EXPECT_TRUE(sr.done());  // a capped fabric must never deadlock a PE
  }                          // against its own mailbox
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(fabric.Recv(0, 0, 1).size(), sizeof(int));
  }
}

TEST(FabricCapTest, CollectivesCompleteUnderTightCap) {
  // Every collective drains what it sends, so a capped cluster must make
  // progress even when the cap is far below the exchanged volume.
  Cluster::Options options;
  options.num_pes = 4;
  options.channel_cap_bytes = 256;
  Cluster::Result result = Cluster::Run(options, [](Comm& comm) {
    std::vector<std::vector<uint64_t>> sends(comm.size());
    for (int d = 0; d < comm.size(); ++d) {
      sends[d].assign(512, comm.rank() * 100 + d);  // 4 KiB per pair >> cap
    }
    auto recvd = comm.Alltoallv<uint64_t>(sends);
    for (int s = 0; s < comm.size(); ++s) {
      ASSERT_EQ(recvd[s].size(), 512u);
      EXPECT_EQ(recvd[s][0], static_cast<uint64_t>(s * 100 + comm.rank()));
    }
    comm.Barrier();
    EXPECT_EQ(comm.AllreduceSum<int>(1), comm.size());
  });
  // A message that beats the peer's posted receive queues, but at most one
  // admission beyond the cap is ever outstanding (the empty-queue rule), so
  // buffering is bounded by max(cap, one payload) — never the full volume.
  EXPECT_LE(result.max_channel_queued_bytes, 512 * sizeof(uint64_t));
}

}  // namespace
}  // namespace demsort::net
