// The hierarchical transport and the two-level collectives, swept over
// degenerate and uneven node shapes: a single PE, one big node, even
// nodes, a singleton-plus-big-node split, and an uneven three-node
// machine. Covers the collective contract (same results as the flat
// schedules), the streaming protocol variants (standalone, piggyback,
// adaptive), failure containment through the proxy (kill a non-leader,
// kill a leader = node death, sever cross-node and intra-node links), the
// N*(N-1) inter-node connection arithmetic, the intra/inter traffic
// classification, the demux watermark's buffering bound, the frame
// pool's recycling bound (allocations stay O(pool), not O(messages)),
// and the single uplink reactor's failover (one dead peer node must not
// stop service to the survivors).
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <numeric>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "net/cluster.h"
#include "net/comm.h"
#include "net/fault_transport.h"
#include "net/hierarchical_transport.h"

namespace demsort::net {
namespace {

std::vector<std::vector<int>> TestShapes() {
  // {1,2,2} is load-bearing: it is the smallest shape where a LOCAL
  // leader-pair scaling factor (k x k_peer) would differ per leader
  // (2 vs 4) — the two-level stream options must come out identical on
  // every leader anyway, or the credit economy deadlocks. The other
  // uneven shapes ({1,3}, {2,3,2}) coincidentally agree.
  return {{1}, {4}, {2, 2}, {1, 3}, {1, 2, 2}, {2, 3, 2}};
}

Topology ShapeTopo(const std::vector<int>& shape) {
  auto topo = Topology::FromNodeSizes(shape);
  DEMSORT_CHECK_OK(topo.status());
  return std::move(topo).value();
}

// ------------------------------------------------------ collectives ----

TEST(HierarchicalTransportTest, CollectiveSuiteAcrossShapes) {
  for (const auto& shape : TestShapes()) {
    Topology topo = ShapeTopo(shape);
    SCOPED_TRACE("shape " + topo.ToString());
    HierCluster::Run(topo, [](Comm& comm) {
      const int P = comm.size();
      const int me = comm.rank();

      comm.Barrier();
      for (int root = 0; root < P; ++root) {
        uint64_t value = me == root ? 1000 + root : 0;
        EXPECT_EQ(comm.BroadcastValue<uint64_t>(root, value), 1000u + root);
      }
      uint64_t n = P;
      EXPECT_EQ(comm.AllreduceSum<uint64_t>(me + 1), n * (n + 1) / 2);
      EXPECT_EQ(comm.AllreduceMax<uint64_t>(me + 1), n);
      EXPECT_FALSE(comm.AllreduceAnd(me != 0));

      std::vector<int> gathered = comm.Allgather<int>(me * 10);
      ASSERT_EQ(gathered.size(), static_cast<size_t>(P));
      for (int p = 0; p < P; ++p) EXPECT_EQ(gathered[p], p * 10);

      std::vector<uint32_t> mine(me);
      for (int i = 0; i < me; ++i) mine[i] = me * 100 + i;
      auto all = comm.AllgatherV(mine);
      for (int p = 0; p < P; ++p) {
        ASSERT_EQ(all[p].size(), static_cast<size_t>(p));
        for (int i = 0; i < p; ++i) {
          EXPECT_EQ(all[p][i], static_cast<uint32_t>(p * 100 + i));
        }
      }

      std::vector<std::vector<uint32_t>> sends(P);
      for (int d = 0; d < P; ++d) sends[d].assign(me + d, me * 1000 + d);
      auto recvd = comm.Alltoallv<uint32_t>(sends);
      for (int s = 0; s < P; ++s) {
        ASSERT_EQ(recvd[s].size(), static_cast<size_t>(s + me));
        for (uint32_t v : recvd[s]) {
          EXPECT_EQ(v, static_cast<uint32_t>(s * 1000 + me));
        }
      }

      uint64_t prefix = comm.ExclusiveScanSum(me + 1);
      uint64_t expect = 0;
      for (int p = 0; p < me; ++p) expect += p + 1;
      EXPECT_EQ(prefix, expect);
      comm.Barrier();
    });
  }
}

// ------------------------------------------------ streaming variants ----

/// Deterministic per-pair payloads mixing zero sizes with non-chunk
/// multiples (the transport_test pattern).
size_t PairBytes(int src, int dst) {
  return static_cast<size_t>(((src + 2 * dst) % 4) * 137 +
                             ((src * dst) % 3));
}
uint8_t PairByte(int src, int dst, size_t i) {
  return static_cast<uint8_t>(src * 31 + dst * 17 + i * 7);
}

void StreamBody(Comm& comm, StreamOptions options) {
  const int P = comm.size();
  const int me = comm.rank();
  options.chunk_bytes = 64;
  const uint64_t max_chunk = comm.StreamMaxChunkBytes(options);
  std::vector<std::vector<uint8_t>> payloads(P);
  std::vector<std::span<const uint8_t>> spans(P);
  for (int d = 0; d < P; ++d) {
    payloads[d].resize(PairBytes(me, d));
    for (size_t i = 0; i < payloads[d].size(); ++i) {
      payloads[d][i] = PairByte(me, d, i);
    }
    spans[d] = std::span<const uint8_t>(payloads[d]);
  }
  std::vector<std::vector<uint8_t>> got(P);
  std::vector<int> lasts(P, 0);
  std::vector<uint64_t> announced(P, UINT64_MAX);
  comm.AlltoallvStream(
      spans,
      [&](int src, std::span<const uint8_t> data, bool last) {
        EXPECT_LE(data.size(), max_chunk);
        EXPECT_EQ(lasts[src], 0) << "chunk after last from " << src;
        got[src].insert(got[src].end(), data.begin(), data.end());
        if (last) ++lasts[src];
      },
      [&](int src, uint64_t bytes) { announced[src] = bytes; }, options);
  for (int s = 0; s < P; ++s) {
    ASSERT_EQ(got[s].size(), PairBytes(s, me)) << "source " << s;
    EXPECT_EQ(announced[s], got[s].size());
    EXPECT_EQ(lasts[s], 1);
    for (size_t i = 0; i < got[s].size(); ++i) {
      ASSERT_EQ(got[s][i], PairByte(s, me, i))
          << "source " << s << " byte " << i;
    }
  }
}

TEST(HierarchicalTransportTest, StreamingModesAcrossShapes) {
  struct Mode {
    StreamCreditMode credit;
    StreamChunkMode chunk;
    const char* name;
  };
  const Mode modes[] = {
      {StreamCreditMode::kStandalone, StreamChunkMode::kFixed, "standalone"},
      {StreamCreditMode::kPiggyback, StreamChunkMode::kFixed, "piggyback"},
      {StreamCreditMode::kPiggyback, StreamChunkMode::kAdaptive, "adaptive"},
  };
  for (const auto& shape : TestShapes()) {
    Topology topo = ShapeTopo(shape);
    for (const Mode& mode : modes) {
      SCOPED_TRACE("shape " + topo.ToString() + " mode " + mode.name);
      HierCluster::Run(topo, [&](Comm& comm) {
        StreamOptions options;
        options.credit_mode = mode.credit;
        options.chunk_mode = mode.chunk;
        StreamBody(comm, options);
      });
    }
  }
}

TEST(HierarchicalTransportTest, TypedStreamedAllgatherMatchesBuffered) {
  for (const auto& shape : TestShapes()) {
    Topology topo = ShapeTopo(shape);
    SCOPED_TRACE("shape " + topo.ToString());
    HierCluster::Run(topo, [](Comm& comm) {
      const int me = comm.rank();
      std::vector<uint32_t> mine(static_cast<size_t>(me * 3 + 1));
      for (size_t i = 0; i < mine.size(); ++i) {
        mine[i] = static_cast<uint32_t>(me * 1000 + i);
      }
      auto streamed = comm.AllgatherVStreamed<uint32_t>(mine);
      auto buffered = comm.AllgatherV(mine);
      ASSERT_EQ(streamed.size(), buffered.size());
      for (size_t p = 0; p < streamed.size(); ++p) {
        EXPECT_EQ(streamed[p], buffered[p]) << "src " << p;
      }
    });
  }
}

// ------------------------------------- topology & traffic accounting ----

TEST(HierarchicalTransportTest, InterNodeConnectionCountIsNodeMesh) {
  for (const auto& shape : TestShapes()) {
    Topology topo = ShapeTopo(shape);
    const uint64_t n = static_cast<uint64_t>(topo.num_nodes());
    EXPECT_EQ(topo.InterNodeConnections(), n * (n - 1));
    if (topo.hierarchical()) {
      EXPECT_LT(topo.InterNodeConnections(),
                Topology::FlatConnections(topo.num_pes()))
          << "the hierarchy must need fewer cross-node connections than "
             "the flat mesh";
    }
  }
}

TEST(HierarchicalTransportTest, IntraInterCountersClassifyTraffic) {
  // {2, 2}: 0→1 is shared memory, 0→2 crosses the uplink; the counters
  // (and the receive-buffering gauge exemption) must follow that split.
  Topology topo = ShapeTopo({2, 2});
  HierCluster::Result result = HierCluster::Run(
      HierCluster::Options{topo, 0, 0, /*flat_collectives=*/true},
      [](Comm& comm) {
        std::vector<uint8_t> data(1000, 7);
        if (comm.rank() == 0) {
          comm.Send(1, 5, data.data(), data.size());
          comm.Send(2, 6, data.data(), data.size());
        } else if (comm.rank() == 1) {
          EXPECT_EQ(comm.Recv(0, 5).size(), 1000u);
        } else if (comm.rank() == 2) {
          EXPECT_EQ(comm.Recv(0, 6).size(), 1000u);
        }
        comm.Barrier();
      });
  EXPECT_GE(result.stats[0].intra_node_msgs, 1u);
  EXPECT_GE(result.stats[0].inter_node_msgs, 1u);
  EXPECT_GE(result.stats[0].intra_node_bytes, 1000u);
  EXPECT_GE(result.stats[0].inter_node_bytes, 1000u);
  EXPECT_EQ(result.stats[0].intra_node_bytes +
                result.stats[0].inter_node_bytes,
            result.stats[0].bytes_sent);
  // Every PE's traffic is fully classified.
  for (const NetStatsSnapshot& s : result.stats) {
    EXPECT_EQ(s.intra_node_bytes + s.inter_node_bytes, s.bytes_sent);
  }
}

TEST(HierarchicalTransportTest, TwoLevelSendsFewerInterNodeMessages) {
  // The same exchange over the same physical hierarchy, flat vs two-level
  // collective schedules: the node-aware schedule must put fewer messages
  // on the uplink — the reduction micro_net --topo-compare CI-asserts.
  Topology topo = Topology::Uniform(8, 2);
  auto run = [&](bool flat) {
    HierCluster::Options options;
    options.topology = topo;
    options.flat_collectives = flat;
    return HierCluster::Run(options, [](Comm& comm) {
      const int P = comm.size();
      std::vector<std::vector<uint64_t>> sends(P);
      for (int d = 0; d < P; ++d) {
        sends[d].assign(2048, comm.rank() * 100 + d);
      }
      for (int i = 0; i < 3; ++i) {
        auto recvd = comm.Alltoallv<uint64_t>(sends);
        for (int s = 0; s < P; ++s) ASSERT_EQ(recvd[s].size(), 2048u);
      }
    });
  };
  HierCluster::Result flat = run(true);
  HierCluster::Result hier = run(false);
  auto inter_msgs = [](const HierCluster::Result& r) {
    uint64_t total = 0;
    for (const NetStatsSnapshot& s : r.stats) total += s.inter_node_msgs;
    return total;
  };
  EXPECT_LT(inter_msgs(hier), inter_msgs(flat))
      << "two-level schedules must reduce uplink messages";
  EXPECT_LT(hier.uplink_total.messages_sent, flat.uplink_total.messages_sent);
}

TEST(HierarchicalTransportTest, PooledFramesRecycleAcrossRepeats) {
  // Repeated streamed exchanges over the two-level machine: after the
  // first repetition primes the pool, frames must come from recycling,
  // not fresh allocation. `leases - hits` counts fresh allocations; with
  // 8 repetitions the fresh share must stay well below the total — the
  // transport allocates O(pool), not O(messages).
  constexpr int kReps = 8;
  HierCluster::Options options;
  options.topology = Topology::Uniform(8, 2);
  HierCluster::Result result = HierCluster::Run(options, [](Comm& comm) {
    const int P = comm.size();
    std::vector<uint8_t> payload(32 * 1024,
                                 static_cast<uint8_t>(comm.rank()));
    std::vector<std::span<const uint8_t>> spans(
        P, std::span<const uint8_t>(payload));
    StreamOptions so;
    so.chunk_bytes = 4096;
    so.chunk_mode = StreamChunkMode::kFixed;
    for (int rep = 0; rep < kReps; ++rep) {
      std::vector<uint64_t> got(P, 0);
      comm.AlltoallvStream(
          spans,
          [&](int src, std::span<const uint8_t> data, bool) {
            got[src] += data.size();
          },
          nullptr, so);
      for (int s = 0; s < P; ++s) {
        ASSERT_EQ(got[s], payload.size()) << "source " << s;
      }
      comm.Barrier();
    }
  });
  uint64_t leases = 0, hits = 0;
  for (const NetStatsSnapshot& s : result.stats) {
    leases += s.pool_leases;
    hits += s.pool_hits;
  }
  ASSERT_GT(leases, 0u);
  EXPECT_GT(hits, 0u);
  EXPECT_LT(leases - hits, leases / 4)
      << "fresh allocations must be a small fraction of " << leases
      << " leases once the pool is primed (hits: " << hits << ")";
}

TEST(HierarchicalTransportTest, DemuxWatermarkBoundsReceiveBuffering) {
  // A cross-node burst at a sleeping receiver: the demux thread pauses at
  // the watermark, so the receiver's transport-held bytes stay bounded.
  constexpr size_t kFrame = 4096;
  constexpr size_t kBound = 16 * 1024;
  constexpr int kFrames = 64;
  HierCluster::Options options;
  options.topology = ShapeTopo({1, 1});
  options.recv_watermark_bytes = kBound;
  HierCluster::Result result = HierCluster::Run(options, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<uint8_t> frame(kFrame, 7);
      std::vector<SendRequest> sends;
      for (int i = 0; i < kFrames; ++i) {
        sends.push_back(comm.Isend(1, 5, frame.data(), frame.size()));
      }
      for (SendRequest& s : sends) s.Wait();
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      uint64_t total = 0;
      for (int i = 0; i < kFrames; ++i) total += comm.Recv(0, 5).size();
      EXPECT_EQ(total, uint64_t{kFrames} * kFrame);
    }
  });
  EXPECT_LE(result.stats[1].recv_buffer_peak_bytes,
            kBound + kFrame + sizeof(HierFrameHeader));
}

// --------------------------------------------- failure containment ----

struct PeOutcome {
  bool completed = false;
  bool comm_error = false;
  bool other_error = false;
  std::string what;
};

std::vector<PeOutcome> RunHierWithFault(
    const Topology& topo, const FaultInjector::Spec& spec,
    const std::function<void(Comm&)>& body) {
  auto injector = std::make_shared<FaultInjector>(spec);
  const int P = topo.num_pes();
  std::vector<PeOutcome> outcomes(P);
  Fabric uplink(topo.num_nodes());
  std::vector<std::unique_ptr<HierarchicalTransport>> nodes;
  std::vector<std::unique_ptr<FaultTransport>> faults;
  for (int n = 0; n < topo.num_nodes(); ++n) {
    nodes.push_back(std::make_unique<HierarchicalTransport>(topo, n, &uplink));
    faults.push_back(
        std::make_unique<FaultTransport>(nodes[n].get(), injector));
  }
  std::vector<std::thread> threads;
  threads.reserve(P);
  for (int pe = 0; pe < P; ++pe) {
    Transport* transport = faults[topo.node_of(pe)].get();
    threads.emplace_back([&, pe, transport] {
      try {
        Comm comm(pe, P, transport, &topo);
        body(comm);
        outcomes[pe].completed = true;
      } catch (const CommError& e) {
        outcomes[pe].comm_error = true;
        outcomes[pe].what = e.what();
        transport->KillPe(pe, e.status());
      } catch (const std::exception& e) {
        outcomes[pe].other_error = true;
        outcomes[pe].what = e.what();
        transport->KillPe(pe, Status::Internal(e.what()));
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& node : nodes) node->Shutdown();
  return outcomes;
}

void StreamKillBody(Comm& comm) {
  constexpr size_t kChunk = 1024;
  const size_t per_pair = Comm::kStreamSendCreditChunks * 8 * kChunk;
  std::vector<uint8_t> payload(per_pair, static_cast<uint8_t>(comm.rank()));
  std::vector<std::span<const uint8_t>> spans(
      comm.size(), std::span<const uint8_t>(payload));
  comm.AlltoallvStream(
      spans, [](int, std::span<const uint8_t>, bool) {}, nullptr, kChunk);
}

TEST(HierarchicalFaultTest, KillNonLeaderMidStreamFailsEveryPe) {
  Topology topo = ShapeTopo({2, 3, 2});
  FaultInjector::Spec spec;
  spec.victim_pe = 3;  // node 1's middle PE — not a leader
  spec.fail_at_op = 7;
  auto outcomes = RunHierWithFault(topo, spec, StreamKillBody);
  for (size_t pe = 0; pe < outcomes.size(); ++pe) {
    EXPECT_FALSE(outcomes[pe].other_error)
        << "PE " << pe << ": " << outcomes[pe].what;
    EXPECT_TRUE(outcomes[pe].comm_error) << "PE " << pe;
  }
}

TEST(HierarchicalFaultTest, KillLeaderIsNodeDeathAndFailsEveryPe) {
  Topology topo = ShapeTopo({2, 3, 2});
  FaultInjector::Spec spec;
  spec.victim_pe = 2;  // node 1's leader: takes the whole node down
  spec.fail_at_op = 9;
  auto outcomes = RunHierWithFault(topo, spec, StreamKillBody);
  for (size_t pe = 0; pe < outcomes.size(); ++pe) {
    EXPECT_FALSE(outcomes[pe].other_error)
        << "PE " << pe << ": " << outcomes[pe].what;
    EXPECT_TRUE(outcomes[pe].comm_error) << "PE " << pe;
  }
}

TEST(HierarchicalFaultTest, SeverCrossNodeLeaderLinkFailsBothEndpoints) {
  Topology topo = ShapeTopo({2, 3, 2});
  FaultInjector::Spec spec;
  spec.link_src = 0;  // leader of node 0
  spec.link_dst = 2;  // leader of node 1 — the pair the engine streams on
  spec.fail_at_op = 2;
  auto outcomes = RunHierWithFault(topo, spec, StreamKillBody);
  for (size_t pe = 0; pe < outcomes.size(); ++pe) {
    EXPECT_FALSE(outcomes[pe].other_error)
        << "PE " << pe << ": " << outcomes[pe].what;
    EXPECT_TRUE(outcomes[pe].completed || outcomes[pe].comm_error)
        << "PE " << pe;
  }
  EXPECT_TRUE(outcomes[0].comm_error) << outcomes[0].what;
  EXPECT_TRUE(outcomes[2].comm_error) << outcomes[2].what;
}

TEST(HierarchicalFaultTest, SeverIntraNodeLinkFailsBothEndpoints) {
  Topology topo = ShapeTopo({2, 3, 2});
  FaultInjector::Spec spec;
  spec.link_src = 3;  // same node as 4: the link carries the direct frame
  spec.link_dst = 4;
  spec.fail_at_op = 1;
  auto outcomes = RunHierWithFault(topo, spec, StreamKillBody);
  for (size_t pe = 0; pe < outcomes.size(); ++pe) {
    EXPECT_FALSE(outcomes[pe].other_error)
        << "PE " << pe << ": " << outcomes[pe].what;
    EXPECT_TRUE(outcomes[pe].completed || outcomes[pe].comm_error)
        << "PE " << pe;
  }
  EXPECT_TRUE(outcomes[3].comm_error) << outcomes[3].what;
  EXPECT_TRUE(outcomes[4].comm_error) << outcomes[4].what;
}

TEST(HierarchicalFaultTest, ReactorServesOtherPeersAfterNodeDeath) {
  // Three single-PE nodes, so each node's ONE reactor serves two peer
  // nodes. Node 1 dies mid-run; the reactors on nodes 0 and 2 must fail
  // that peer and keep demultiplexing each other's frames — the
  // survivors' pairwise exchange completes.
  Topology topo = ShapeTopo({1, 1, 1});
  FaultInjector::Spec spec;
  spec.victim_pe = 1;
  spec.fail_at_op = 3;
  auto outcomes = RunHierWithFault(topo, spec, [](Comm& comm) {
    const int me = comm.rank();
    std::vector<uint8_t> data(8192, static_cast<uint8_t>(me));
    if (me == 1) {
      // Prove liveness to both survivors, then keep issuing ops until
      // the injector fires.
      comm.Send(0, 1, data.data(), 64);
      comm.Send(2, 1, data.data(), 64);
      for (int i = 0; i < 64; ++i) comm.Send(0, 2, data.data(), 64);
    } else {
      // See the victim alive once, then exchange only with the other
      // survivor — the victim's death must not stall this traffic.
      EXPECT_EQ(comm.Recv(1, 1).size(), 64u);
      const int peer = me == 0 ? 2 : 0;
      for (int i = 0; i < 32; ++i) {
        SendRequest s = comm.Isend(peer, 7, data.data(), data.size());
        EXPECT_EQ(comm.Recv(peer, 7).size(), data.size());
        s.Wait();
      }
    }
  });
  EXPECT_TRUE(outcomes[1].comm_error) << outcomes[1].what;
  for (int pe : {0, 2}) {
    EXPECT_FALSE(outcomes[pe].other_error)
        << "PE " << pe << ": " << outcomes[pe].what;
    EXPECT_TRUE(outcomes[pe].completed)
        << "survivor PE " << pe << " must finish after node 1 dies: "
        << outcomes[pe].what;
  }
}

TEST(HierarchicalFaultTest, KillsContainedAcrossShapesAndSeeds) {
  // Seed-swept kills over the uneven shapes: every PE ends in completed
  // or comm_error — never another error, an abort, or a hang (the ctest
  // TIMEOUT is the backstop).
  for (const auto& shape : {std::vector<int>{1, 3}, std::vector<int>{1, 2, 2},
                            std::vector<int>{2, 3, 2}}) {
    Topology topo = ShapeTopo(shape);
    for (uint64_t seed = 0; seed < 4; ++seed) {
      FaultInjector::Spec spec =
          FaultInjector::PeFailureFromSeed(seed, topo.num_pes(), 48);
      SCOPED_TRACE("shape " + topo.ToString() + " seed " +
                   std::to_string(seed));
      auto outcomes = RunHierWithFault(topo, spec, [](Comm& comm) {
        StreamKillBody(comm);
        comm.Barrier();
        comm.AllreduceSum<uint64_t>(comm.rank());
      });
      bool victim_died = outcomes[spec.victim_pe].comm_error;
      for (size_t pe = 0; pe < outcomes.size(); ++pe) {
        EXPECT_FALSE(outcomes[pe].other_error)
            << "PE " << pe << ": " << outcomes[pe].what;
        EXPECT_TRUE(outcomes[pe].completed || outcomes[pe].comm_error)
            << "PE " << pe;
        if (victim_died) {
          EXPECT_FALSE(outcomes[pe].completed)
              << "PE " << pe << " completed although the victim died";
        }
      }
    }
  }
}

}  // namespace
}  // namespace demsort::net
