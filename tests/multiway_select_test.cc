// Property tests of the exact in-memory multiway selection primitive: for
// random sequence families and every interesting rank, the returned split
// positions must (a) sum to the rank and (b) partition the sequences at the
// boundary element of the (key, seq, pos) total order — checked against a
// brute-force merge oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <tuple>
#include <vector>

#include "core/record.h"
#include "par/multiway_select.h"
#include "util/random.h"

namespace demsort::par {
namespace {

using demsort::core::KV16;
using KVLess = demsort::core::RecordTraits<KV16>::Less;

struct IntLess {
  bool operator()(int a, int b) const { return a < b; }
};

/// Brute-force oracle: merge all sequences in (key, seq, pos) order and take
/// per-sequence counts of the first `rank` merged elements.
std::vector<size_t> OracleSelect(const std::vector<std::vector<int>>& seqs,
                                 uint64_t rank) {
  struct Tagged {
    int key;
    size_t seq;
    size_t pos;
  };
  std::vector<Tagged> all;
  for (size_t j = 0; j < seqs.size(); ++j) {
    for (size_t p = 0; p < seqs[j].size(); ++p) {
      all.push_back({seqs[j][p], j, p});
    }
  }
  std::sort(all.begin(), all.end(), [](const Tagged& a, const Tagged& b) {
    return std::tie(a.key, a.seq, a.pos) < std::tie(b.key, b.seq, b.pos);
  });
  std::vector<size_t> counts(seqs.size(), 0);
  for (uint64_t i = 0; i < rank; ++i) ++counts[all[i].seq];
  return counts;
}

std::vector<std::span<const int>> Spans(
    const std::vector<std::vector<int>>& seqs) {
  std::vector<std::span<const int>> spans;
  for (const auto& s : seqs) spans.emplace_back(s.data(), s.size());
  return spans;
}

TEST(MultiwaySelectTest, SingleSequence) {
  std::vector<std::vector<int>> seqs = {{1, 2, 3, 4, 5}};
  for (uint64_t r = 0; r <= 5; ++r) {
    auto got = MultiwaySelect<int, IntLess>(Spans(seqs), r);
    EXPECT_EQ(got[0], r);
  }
}

TEST(MultiwaySelectTest, RankZeroAndTotal) {
  std::vector<std::vector<int>> seqs = {{1, 3}, {2, 4}, {0, 5}};
  auto zero = MultiwaySelect<int, IntLess>(Spans(seqs), 0);
  EXPECT_EQ(zero, (std::vector<size_t>{0, 0, 0}));
  auto total = MultiwaySelect<int, IntLess>(Spans(seqs), 6);
  EXPECT_EQ(total, (std::vector<size_t>{2, 2, 2}));
}

TEST(MultiwaySelectTest, EmptySequencesAmongFull) {
  std::vector<std::vector<int>> seqs = {{}, {1, 2, 3}, {}, {0, 4}, {}};
  for (uint64_t r = 0; r <= 5; ++r) {
    auto got = MultiwaySelect<int, IntLess>(Spans(seqs), r);
    EXPECT_EQ(got, OracleSelect(seqs, r)) << "rank " << r;
  }
}

TEST(MultiwaySelectTest, AllEqualKeysSplitBySeqThenPos) {
  std::vector<std::vector<int>> seqs = {{7, 7, 7}, {7, 7}, {7, 7, 7, 7}};
  for (uint64_t r = 0; r <= 9; ++r) {
    auto got = MultiwaySelect<int, IntLess>(Spans(seqs), r);
    EXPECT_EQ(got, OracleSelect(seqs, r)) << "rank " << r;
  }
}

TEST(MultiwaySelectTest, InterleavedDuplicates) {
  std::vector<std::vector<int>> seqs = {{1, 1, 2, 2, 3}, {1, 2, 2, 3, 3},
                                        {2, 2, 2, 2}};
  uint64_t total = 14;
  for (uint64_t r = 0; r <= total; ++r) {
    auto got = MultiwaySelect<int, IntLess>(Spans(seqs), r);
    EXPECT_EQ(got, OracleSelect(seqs, r)) << "rank " << r;
  }
}

class MultiwaySelectRandomTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MultiwaySelectRandomTest, MatchesOracleAtAllRanks) {
  auto [k, max_len, key_range] = GetParam();
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed * 977 + k * 31 + max_len);
    std::vector<std::vector<int>> seqs(k);
    uint64_t total = 0;
    for (auto& s : seqs) {
      s.resize(rng.Below(max_len + 1));
      for (auto& x : s) x = static_cast<int>(rng.Below(key_range));
      std::sort(s.begin(), s.end());
      total += s.size();
    }
    // Check a spread of ranks including the extremes.
    std::vector<uint64_t> ranks = {0, total / 4, total / 2, 3 * total / 4,
                                   total};
    for (uint64_t extra = 0; extra < 3 && total > 0; ++extra) {
      ranks.push_back(rng.Below(total + 1));
    }
    for (uint64_t r : ranks) {
      auto got = MultiwaySelect<int, IntLess>(Spans(seqs), r);
      auto expect = OracleSelect(seqs, r);
      ASSERT_EQ(got, expect) << "k=" << k << " seed=" << seed << " rank=" << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MultiwaySelectRandomTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 16),
                       ::testing::Values(10, 100, 500),
                       ::testing::Values(2, 10, 1000000)));

// ------------------------------------------------------ SelectSplitters ----

/// Shared splitter-matrix properties: parts+1 rows, row 0 all zeros, row
/// `parts` the sequence sizes, rows elementwise monotone, and each row t an
/// exact MultiwaySelect at rank t*total/parts.
void CheckSplitters(const std::vector<std::vector<int>>& seqs, size_t parts) {
  uint64_t total = 0;
  for (const auto& s : seqs) total += s.size();
  auto split = SelectSplitters<int, IntLess>(Spans(seqs), parts);
  ASSERT_EQ(split.size(), parts + 1);
  for (size_t j = 0; j < seqs.size(); ++j) {
    EXPECT_EQ(split[0][j], 0u);
    EXPECT_EQ(split[parts][j], seqs[j].size());
  }
  for (size_t t = 1; t <= parts; ++t) {
    uint64_t row_total = 0;
    for (size_t j = 0; j < seqs.size(); ++j) {
      EXPECT_LE(split[t - 1][j], split[t][j])
          << "part " << t << " seq " << j << " not monotone";
      row_total += split[t][j];
    }
    EXPECT_EQ(row_total, t * total / parts) << "part " << t;
    if (t < parts) {
      EXPECT_EQ(split[t], OracleSelect(seqs, t * total / parts))
          << "part " << t;
    }
  }
}

TEST(SelectSplittersTest, SinglePartIsWholeRange) {
  std::vector<std::vector<int>> seqs = {{1, 3, 5}, {2, 4}};
  CheckSplitters(seqs, 1);
}

TEST(SelectSplittersTest, EmptySequencesAndEmptyInput) {
  CheckSplitters({{}, {1, 2, 3}, {}, {0, 4}, {}}, 3);
  CheckSplitters({{}, {}, {}}, 4);  // nothing to split: all rows zero
}

TEST(SelectSplittersTest, DuplicateHeavyKeysStayExact) {
  // All-equal keys: cuts fall on the (seq, pos) tie-break order, and every
  // part still gets exactly its rank share.
  std::vector<std::vector<int>> seqs = {{7, 7, 7, 7}, {7, 7, 7}, {7, 7, 7, 7, 7}};
  for (size_t parts : {1u, 2u, 3u, 4u, 6u}) CheckSplitters(seqs, parts);
}

TEST(SelectSplittersTest, MorePartsThanElements) {
  std::vector<std::vector<int>> seqs = {{1}, {2}};
  CheckSplitters(seqs, 8);  // most parts come out empty — that is fine
}

TEST(SelectSplittersTest, RandomizedSweep) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::vector<int>> seqs(1 + rng.Below(6));
    for (auto& s : seqs) {
      s.resize(rng.Below(80));
      for (auto& x : s) x = static_cast<int>(rng.Below(9));
      std::sort(s.begin(), s.end());
    }
    for (size_t parts : {1u, 2u, 4u, 7u}) CheckSplitters(seqs, parts);
  }
}

TEST(MultiwaySelectTest, WorksOnRecords) {
  std::vector<std::vector<KV16>> seqs(3);
  Rng rng(5);
  for (auto& s : seqs) {
    s.resize(100);
    for (auto& r : s) r = {rng.Below(50), rng.Next()};
    std::sort(s.begin(), s.end(), KVLess());
  }
  std::vector<std::span<const KV16>> spans;
  for (auto& s : seqs) spans.emplace_back(s.data(), s.size());
  auto got = MultiwaySelect<KV16, KVLess>(spans, 150);
  EXPECT_EQ(got[0] + got[1] + got[2], 150u);
  // Partition property: max key of the left parts <= min key of the right
  // parts (with seq-index tie breaking, keys alone must satisfy <=).
  uint64_t max_left = 0;
  uint64_t min_right = UINT64_MAX;
  for (size_t j = 0; j < 3; ++j) {
    if (got[j] > 0) max_left = std::max(max_left, seqs[j][got[j] - 1].key);
    if (got[j] < seqs[j].size()) {
      min_right = std::min(min_right, seqs[j][got[j]].key);
    }
  }
  EXPECT_LE(max_left, min_right);
}

}  // namespace
}  // namespace demsort::par
