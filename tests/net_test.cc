#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "net/buffer_pool.h"
#include "net/cluster.h"
#include "net/comm.h"
#include "util/random.h"

namespace demsort::net {
namespace {

// ----------------------------------------------------- buffer pool -------

TEST(BufferPoolTest, CancelWaitsIsScopedToParkedWaiters) {
  // A fault releases the waiters parked on the budget at that moment, but
  // the budget must RE-ARM for later leases — one dead link must not turn
  // the pool unbounded for every survivor for the rest of the run.
  BufferPool::Options o;
  o.budget_bytes = 1024;
  BufferPool pool(o);
  std::vector<uint8_t> a = pool.Lease(1024, nullptr);  // budget now full
  std::atomic<bool> first_released{false};
  std::thread parked([&] {
    std::vector<uint8_t> b = pool.Lease(512, nullptr);
    first_released = true;
    pool.Recycle(std::move(b), 512);
  });
  while (pool.outstanding_bytes() < 1024 + 512) {
    // The waiter charges only once it is released; give it time to park.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (first_released) break;
    pool.CancelWaits();
  }
  parked.join();
  EXPECT_TRUE(first_released);
  EXPECT_EQ(pool.outstanding_bytes(), 1024u);
  // A lease arriving AFTER the cancel blocks on the budget again.
  std::atomic<bool> second_released{false};
  std::thread rearmed([&] {
    std::vector<uint8_t> c = pool.Lease(512, nullptr);
    second_released = true;
    pool.Recycle(std::move(c), 512);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_released) << "budget did not re-arm after CancelWaits";
  pool.Recycle(std::move(a), 1024);  // frees the budget; the lease proceeds
  rearmed.join();
  EXPECT_TRUE(second_released);
  EXPECT_EQ(pool.outstanding_bytes(), 0u);
}

TEST(BufferPoolTest, ExemptLeaseBypassesBudget) {
  // Receiver-side payload leases (the TCP reader) must never park on the
  // send budget: the application sender may be blocked in Lease waiting
  // for exactly this reader to drain its mailbox.
  BufferPool::Options o;
  o.budget_bytes = 1024;
  BufferPool pool(o);
  std::vector<uint8_t> a = pool.Lease(1024, nullptr);  // budget full
  std::vector<uint8_t> r = pool.LeaseExempt(4096, nullptr);  // no wait
  EXPECT_EQ(r.size(), 4096u);
  EXPECT_EQ(pool.outstanding_bytes(), 1024u) << "exempt leases are uncharged";
  pool.Recycle(std::move(r), /*charge=*/0);
  EXPECT_EQ(pool.outstanding_bytes(), 1024u);
  pool.Recycle(std::move(a), 1024);
}

TEST(BufferPoolTest, TinyRecyclesDoNotCrowdOutChunkBuffers) {
  // Thousands of recycled credit-sized buffers land in the small class:
  // they neither evict nor hide a chunk-sized buffer, and the retained
  // entry count stays capped per class.
  BufferPool pool;
  for (int i = 0; i < 1000; ++i) {
    std::vector<uint8_t> tiny(8);
    tiny.shrink_to_fit();
    pool.Recycle(std::move(tiny), 0);
  }
  {
    std::vector<uint8_t> chunk(64 << 10);
    pool.Recycle(std::move(chunk), 0);
  }
  NetStats stats;
  std::vector<uint8_t> lease = pool.Lease(64 << 10, &stats);
  EXPECT_EQ(lease.size(), size_t{64} << 10);
  EXPECT_EQ(stats.Snapshot().pool_hits, 1u)
      << "the chunk lease must be served from the free list";
  std::vector<uint8_t> small = pool.Lease(8, &stats);
  EXPECT_EQ(stats.Snapshot().pool_hits, 2u)
      << "tiny leases recycle from the small class";
}

// ----------------------------------------------------------- pt2pt -------

TEST(CommTest, SendRecvValue) {
  Cluster::Run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.SendValue<int>(1, 7, 42);
    } else {
      EXPECT_EQ(comm.RecvValue<int>(0, 7), 42);
    }
  });
}

TEST(CommTest, FifoPerSourceAndTag) {
  Cluster::Run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 100; ++i) comm.SendValue<int>(1, 5, i);
    } else {
      for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(comm.RecvValue<int>(0, 5), i);
      }
    }
  });
}

TEST(CommTest, TagMatchingOutOfOrder) {
  Cluster::Run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.SendValue<int>(1, /*tag=*/1, 111);
      comm.SendValue<int>(1, /*tag=*/2, 222);
    } else {
      // Receive tag 2 first although tag 1 was sent first.
      EXPECT_EQ(comm.RecvValue<int>(0, 2), 222);
      EXPECT_EQ(comm.RecvValue<int>(0, 1), 111);
    }
  });
}

TEST(CommTest, SelfSendWorks) {
  Cluster::Run(1, [](Comm& comm) {
    comm.SendValue<uint64_t>(0, 3, 99);
    EXPECT_EQ(comm.RecvValue<uint64_t>(0, 3), 99u);
  });
}

TEST(CommTest, EmptyMessage) {
  Cluster::Run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.Send(1, 9, nullptr, 0);
    } else {
      EXPECT_TRUE(comm.Recv(0, 9).empty());
    }
  });
}

TEST(CommTest, VectorRoundTrip) {
  Cluster::Run(2, [](Comm& comm) {
    std::vector<uint64_t> data(1000);
    std::iota(data.begin(), data.end(), 0);
    if (comm.rank() == 0) {
      comm.SendVector(1, 4, data);
    } else {
      EXPECT_EQ(comm.RecvVector<uint64_t>(0, 4), data);
    }
  });
}

// ------------------------------------------------------- collectives -----

class CollectiveParamTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveParamTest, Barrier) {
  int P = GetParam();
  std::atomic<int> counter{0};
  Cluster::Run(P, [&](Comm& comm) {
    counter++;
    comm.Barrier();
    EXPECT_EQ(counter.load(), comm.size());
    comm.Barrier();
  });
}

TEST_P(CollectiveParamTest, BroadcastFromEveryRoot) {
  int P = GetParam();
  Cluster::Run(P, [](Comm& comm) {
    for (int root = 0; root < comm.size(); ++root) {
      uint64_t value = comm.rank() == root ? 1000 + root : 0;
      EXPECT_EQ(comm.BroadcastValue<uint64_t>(root, value),
                1000u + root);
    }
  });
}

TEST_P(CollectiveParamTest, AllreduceSumMinMax) {
  int P = GetParam();
  Cluster::Run(P, [](Comm& comm) {
    uint64_t r = comm.rank() + 1;
    uint64_t n = comm.size();
    EXPECT_EQ(comm.AllreduceSum<uint64_t>(r), n * (n + 1) / 2);
    EXPECT_EQ(comm.AllreduceMax<uint64_t>(r), n);
    EXPECT_EQ(comm.AllreduceMin<uint64_t>(r), 1u);
  });
}

TEST_P(CollectiveParamTest, AllreduceAnd) {
  int P = GetParam();
  Cluster::Run(P, [](Comm& comm) {
    EXPECT_TRUE(comm.AllreduceAnd(true));
    EXPECT_FALSE(comm.AllreduceAnd(comm.rank() != 0));
    EXPECT_FALSE(comm.AllreduceAnd(false));
  });
}

TEST_P(CollectiveParamTest, Allgather) {
  int P = GetParam();
  Cluster::Run(P, [](Comm& comm) {
    std::vector<int> got = comm.Allgather<int>(comm.rank() * 10);
    ASSERT_EQ(got.size(), static_cast<size_t>(comm.size()));
    for (int p = 0; p < comm.size(); ++p) EXPECT_EQ(got[p], p * 10);
  });
}

TEST_P(CollectiveParamTest, AllgatherVVariableSizes) {
  int P = GetParam();
  Cluster::Run(P, [](Comm& comm) {
    std::vector<uint32_t> mine(comm.rank());  // rank i sends i entries
    for (int i = 0; i < comm.rank(); ++i) mine[i] = comm.rank() * 100 + i;
    auto all = comm.AllgatherV(mine);
    ASSERT_EQ(all.size(), static_cast<size_t>(comm.size()));
    for (int p = 0; p < comm.size(); ++p) {
      ASSERT_EQ(all[p].size(), static_cast<size_t>(p));
      for (int i = 0; i < p; ++i) {
        EXPECT_EQ(all[p][i], static_cast<uint32_t>(p * 100 + i));
      }
    }
  });
}

TEST_P(CollectiveParamTest, AlltoallvExchangesCorrectly) {
  int P = GetParam();
  Cluster::Run(P, [](Comm& comm) {
    // PE s sends to PE d the vector [s*1000+d] repeated (s+d) times.
    std::vector<std::vector<uint32_t>> sends(comm.size());
    for (int d = 0; d < comm.size(); ++d) {
      sends[d].assign(comm.rank() + d, comm.rank() * 1000 + d);
    }
    auto recvd = comm.Alltoallv<uint32_t>(sends);
    ASSERT_EQ(recvd.size(), static_cast<size_t>(comm.size()));
    for (int s = 0; s < comm.size(); ++s) {
      ASSERT_EQ(recvd[s].size(), static_cast<size_t>(s + comm.rank()));
      for (uint32_t v : recvd[s]) {
        EXPECT_EQ(v, static_cast<uint32_t>(s * 1000 + comm.rank()));
      }
    }
  });
}

TEST_P(CollectiveParamTest, ExclusiveScanSum) {
  int P = GetParam();
  Cluster::Run(P, [](Comm& comm) {
    uint64_t prefix = comm.ExclusiveScanSum(comm.rank() + 1);
    uint64_t expect = 0;
    for (int p = 0; p < comm.rank(); ++p) expect += p + 1;
    EXPECT_EQ(prefix, expect);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveParamTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16));

// ---------------------------------------------------------- stress -------

TEST(CommTest, RandomizedPairwiseTraffic) {
  const int P = 4;
  Cluster::Run(P, [](Comm& comm) {
    Rng rng(comm.rank() + 1);
    // Everyone sends 50 tagged messages to everyone; then receives them.
    for (int d = 0; d < comm.size(); ++d) {
      for (int i = 0; i < 50; ++i) {
        uint64_t payload = comm.rank() * 10000 + i;
        comm.SendValue<uint64_t>(d, 100 + i, payload);
      }
    }
    for (int s = 0; s < comm.size(); ++s) {
      for (int i = 49; i >= 0; --i) {  // reverse tag order: exercises matching
        EXPECT_EQ(comm.RecvValue<uint64_t>(s, 100 + i),
                  static_cast<uint64_t>(s * 10000 + i));
      }
    }
    comm.Barrier();
  });
}

TEST(ClusterTest, StatsCountBytes) {
  auto stats = Cluster::RunWithStats(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<uint8_t> data(1000, 1);
      comm.Send(1, 1, data.data(), data.size());
    } else {
      comm.Recv(0, 1);
    }
  });
  EXPECT_EQ(stats[0].bytes_sent, 1000u);
  EXPECT_EQ(stats[1].bytes_received, 1000u);
  EXPECT_EQ(stats[1].bytes_sent, 0u);
}

TEST(ClusterTest, SelfSendsNotCounted) {
  auto stats = Cluster::RunWithStats(1, [](Comm& comm) {
    comm.SendValue<int>(0, 1, 5);
    comm.RecvValue<int>(0, 1);
  });
  EXPECT_EQ(stats[0].bytes_sent, 0u);
}

TEST(ClusterTest, ExceptionPropagates) {
  EXPECT_THROW(Cluster::Run(2,
                            [](Comm& comm) {
                              if (comm.rank() == 1) {
                                throw std::runtime_error("pe exploded");
                              }
                            }),
               std::runtime_error);
}

TEST(ClusterTest, ManyPesSmoke) {
  std::atomic<int> total{0};
  Cluster::Run(32, [&](Comm& comm) {
    total += comm.AllreduceSum<int>(1);
  });
  EXPECT_EQ(total.load(), 32 * 32);
}

}  // namespace
}  // namespace demsort::net
