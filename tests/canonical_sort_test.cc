// End-to-end CANONICALMERGESORT: for every (P, size, distribution,
// randomization, prefetch) combination the output must be globally sorted,
// an exact permutation of the input, and exactly partitioned — plus the
// paper's headline I/O and communication volume claims as assertions.
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <tuple>
#include <vector>

#include "core/canonical_mergesort.h"
#include "test_util.h"
#include "workload/generators.h"
#include "workload/validator.h"

namespace demsort::core {
namespace {

using workload::Distribution;
using workload::ValidationResult;

class CanonicalSortParamTest
    : public ::testing::TestWithParam<
          std::tuple<int, uint64_t, Distribution, bool>> {};

TEST_P(CanonicalSortParamTest, SortsValidatesExactly) {
  auto [P, n, dist, randomize] = GetParam();
  SortConfig config = test::SmallConfig();
  config.randomize_blocks = randomize;

  test::RunPes(P, config, [&](PeContext& ctx, const SortConfig& cfg) {
    auto gen = workload::GenerateKV16(ctx.bm, dist, n, ctx.rank(), P,
                                      cfg.seed);
    SortOutput<KV16> out = CanonicalMergeSort<KV16>(ctx, cfg, gen.input);
    ValidationResult v = workload::ValidateCollective<KV16>(
        ctx, out.blocks, out.num_elements, gen.checksum,
        /*require_exact_partition=*/true);
    EXPECT_TRUE(v.locally_sorted);
    EXPECT_TRUE(v.boundaries_ok);
    EXPECT_TRUE(v.permutation_ok) << v.ToString();
    EXPECT_TRUE(v.partition_exact);
    EXPECT_EQ(v.total_elements, static_cast<uint64_t>(P) * n);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CanonicalSortParamTest,
    ::testing::Combine(
        ::testing::Values(1, 2, 3, 4, 8),
        ::testing::Values<uint64_t>(100, 2048, 5000),
        ::testing::Values(Distribution::kUniform,
                          Distribution::kSortedGlobal,
                          Distribution::kWorstCaseLocal,
                          Distribution::kReversedRanges,
                          Distribution::kAllEqual, Distribution::kZipf),
        ::testing::Values(false, true)));

TEST(CanonicalSortTest, Gray100Records) {
  const int P = 3;
  SortConfig config;
  config.block_size = 2000;  // 20 Gray100 records per block
  config.memory_per_pe = 16000;
  config.disks_per_pe = 2;
  config.seed = 7;
  test::RunPes(P, config, [&](PeContext& ctx, const SortConfig& cfg) {
    auto gen = workload::GenerateGray100(ctx.bm, 1000, ctx.rank(), P,
                                         cfg.seed);
    SortOutput<Gray100> out =
        CanonicalMergeSort<Gray100>(ctx, cfg, gen.input);
    auto v = workload::ValidateCollective<Gray100>(
        ctx, out.blocks, out.num_elements, gen.checksum);
    EXPECT_TRUE(v.ok()) << v.ToString();
    EXPECT_TRUE(v.partition_exact);
  });
}

TEST(CanonicalSortTest, IoVolumeIsFourNPlusLittle) {
  // §IV-D: I/O volume 4N + o(N) for random input with randomization.
  const int P = 2;
  const uint64_t n = 8192;
  SortConfig config = test::SmallConfig();
  test::RunPes(P, config, [&](PeContext& ctx, const SortConfig& cfg) {
    auto gen = workload::GenerateKV16(ctx.bm, Distribution::kUniform, n,
                                      ctx.rank(), P, cfg.seed);
    SortOutput<KV16> out = CanonicalMergeSort<KV16>(ctx, cfg, gen.input);
    uint64_t data_bytes = n * sizeof(KV16);
    uint64_t io_bytes = 0;
    for (int p = 0; p < static_cast<int>(Phase::kNumPhases); ++p) {
      io_bytes += out.report.phase[p].io.bytes();
    }
    // 4 passes = read+write twice; tolerate block rounding + selection.
    EXPECT_GT(io_bytes, 4 * data_bytes * 9 / 10);
    EXPECT_LT(io_bytes, 5 * data_bytes);
  });
}

TEST(CanonicalSortTest, CommunicationVolumeIsNPlusLittle) {
  // §IV-D: communication volume N + o(N) — data crosses the network once
  // (during run formation's internal sort), plus metadata.
  const int P = 4;
  const uint64_t n = 4096;
  SortConfig config = test::SmallConfig();
  auto stats = net::Cluster::RunWithStats(P, [&](net::Comm& comm) {
    PeResources resources(&comm, config);
    PeContext& ctx = resources.ctx();
    auto gen = workload::GenerateKV16(ctx.bm, Distribution::kUniform, n,
                                      ctx.rank(), P, config.seed);
    CanonicalMergeSort<KV16>(ctx, config, gen.input);
  });
  uint64_t sent = 0;
  for (auto& s : stats) sent += s.bytes_sent;
  uint64_t n_bytes = P * n * sizeof(KV16);
  // Expected: ~N*(P-1)/P of payload + metadata; must stay well under 2N.
  EXPECT_LT(sent, 2 * n_bytes);
}

TEST(CanonicalSortTest, WorstCaseNonRandomizedStillCorrect) {
  const int P = 4;
  SortConfig config = test::SmallConfig();
  config.randomize_blocks = false;
  test::RunPes(P, config, [&](PeContext& ctx, const SortConfig& cfg) {
    auto gen = workload::GenerateKV16(ctx.bm, Distribution::kWorstCaseLocal,
                                      4096, ctx.rank(), P, cfg.seed);
    SortOutput<KV16> out = CanonicalMergeSort<KV16>(ctx, cfg, gen.input);
    auto v = workload::ValidateCollective<KV16>(ctx, out.blocks,
                                                out.num_elements,
                                                gen.checksum);
    EXPECT_TRUE(v.ok()) << v.ToString();
  });
}

TEST(CanonicalSortTest, RandomizationReducesAllToAllIo) {
  // The Fig. 5 claim as an assertion: on worst-case input, the all-to-all
  // phase moves much less data through the disks with randomization on.
  const int P = 4;
  const uint64_t n = 8192;
  uint64_t io_randomized = 0, io_plain = 0;
  for (bool randomize : {true, false}) {
    SortConfig config = test::SmallConfig();
    config.randomize_blocks = randomize;
    std::mutex mu;
    uint64_t total_io = 0;
    test::RunPes(P, config, [&](PeContext& ctx, const SortConfig& cfg) {
      auto gen = workload::GenerateKV16(
          ctx.bm, Distribution::kWorstCaseLocal, n, ctx.rank(), P, cfg.seed);
      SortOutput<KV16> out = CanonicalMergeSort<KV16>(ctx, cfg, gen.input);
      std::lock_guard<std::mutex> lock(mu);
      total_io += out.report.Get(Phase::kAllToAll).io.bytes();
    });
    (randomize ? io_randomized : io_plain) = total_io;
  }
  EXPECT_LT(io_randomized * 3, io_plain)
      << "randomization should cut all-to-all I/O by a large factor";
}

TEST(CanonicalSortTest, NearlyInPlace) {
  const int P = 2;
  SortConfig config = test::SmallConfig();
  test::RunPes(P, config, [&](PeContext& ctx, const SortConfig& cfg) {
    auto gen = workload::GenerateKV16(ctx.bm, Distribution::kUniform, 8192,
                                      ctx.rank(), P, cfg.seed);
    uint64_t input_blocks = gen.input.blocks.size();
    SortOutput<KV16> out = CanonicalMergeSort<KV16>(ctx, cfg, gen.input);
    // Temporary overhead: one run buffer + RP' partial blocks + write
    // window — far below 2x the input footprint.
    EXPECT_LT(out.report.peak_blocks, input_blocks * 3 / 2 + 16);
  });
}

TEST(CanonicalSortTest, DeterministicAcrossIdenticalRuns) {
  const int P = 3;
  const uint64_t n = 2000;
  std::mutex mu;
  // Indexed [round][rank] so collection order cannot matter.
  std::vector<std::vector<std::vector<uint64_t>>> first_keys(
      2, std::vector<std::vector<uint64_t>>(P));
  for (int round = 0; round < 2; ++round) {
    SortConfig config = test::SmallConfig();
    test::RunPes(P, config, [&](PeContext& ctx, const SortConfig& cfg) {
      auto gen = workload::GenerateKV16(ctx.bm, Distribution::kUniform, n,
                                        ctx.rank(), P, cfg.seed);
      SortOutput<KV16> out = CanonicalMergeSort<KV16>(ctx, cfg, gen.input);
      std::lock_guard<std::mutex> lock(mu);
      for (const KV16& r : out.block_first_records) {
        first_keys[round][ctx.rank()].push_back(r.key);
      }
    });
  }
  EXPECT_EQ(first_keys[0], first_keys[1]);
}

TEST(CanonicalSortTest, SingleElementTotal) {
  SortConfig config = test::SmallConfig();
  test::RunPes(2, config, [&](PeContext& ctx, const SortConfig& cfg) {
    uint64_t n = ctx.rank() == 0 ? 1 : 0;
    auto gen = workload::GenerateKV16(ctx.bm, Distribution::kUniform, n,
                                      ctx.rank(), 2, cfg.seed);
    SortOutput<KV16> out = CanonicalMergeSort<KV16>(ctx, cfg, gen.input);
    auto v = workload::ValidateCollective<KV16>(ctx, out.blocks,
                                                out.num_elements,
                                                gen.checksum);
    EXPECT_TRUE(v.ok()) << v.ToString();
    EXPECT_EQ(v.total_elements, 1u);
  });
}

TEST(CanonicalSortTest, FileBackendEndToEnd) {
  const int P = 2;
  SortConfig config = test::SmallConfig();
  config.backend = io::BlockManager::BackendKind::kFile;
  config.file_dir = "/tmp";
  test::RunPes(P, config, [&](PeContext& ctx, const SortConfig& cfg) {
    auto gen = workload::GenerateKV16(ctx.bm, Distribution::kUniform, 2048,
                                      ctx.rank(), P, cfg.seed);
    SortOutput<KV16> out = CanonicalMergeSort<KV16>(ctx, cfg, gen.input);
    auto v = workload::ValidateCollective<KV16>(ctx, out.blocks,
                                                out.num_elements,
                                                gen.checksum);
    EXPECT_TRUE(v.ok()) << v.ToString();
  });
}

TEST(CanonicalSortTest, SyncIoModeWorks) {
  const int P = 2;
  SortConfig config = test::SmallConfig();
  config.async_io = false;
  test::RunPes(P, config, [&](PeContext& ctx, const SortConfig& cfg) {
    auto gen = workload::GenerateKV16(ctx.bm, Distribution::kUniform, 2048,
                                      ctx.rank(), P, cfg.seed);
    SortOutput<KV16> out = CanonicalMergeSort<KV16>(ctx, cfg, gen.input);
    auto v = workload::ValidateCollective<KV16>(ctx, out.blocks,
                                                out.num_elements,
                                                gen.checksum);
    EXPECT_TRUE(v.ok()) << v.ToString();
  });
}

}  // namespace
}  // namespace demsort::core
