// Run formation (§IV phase 1) invariants: every run is globally sorted,
// pieces tile it exactly, samples carry exact positions, randomization
// permutes block pickup, and the phase is (nearly) in place.
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <tuple>
#include <vector>

#include "core/block_io.h"
#include "core/run_formation.h"
#include "test_util.h"
#include "workload/generators.h"

namespace demsort::core {
namespace {

using test::KVLess;
using workload::Distribution;

std::vector<KV16> ReadPiece(PeContext& ctx, const SortConfig& config,
                            const RunPiece<KV16>& piece) {
  size_t epb = config.ElementsPerBlock<KV16>();
  std::vector<size_t> counts(piece.blocks.size());
  uint64_t remaining = piece.size;
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = static_cast<size_t>(std::min<uint64_t>(epb, remaining));
    remaining -= counts[i];
  }
  return ReadBlocks<KV16>(ctx.bm, piece.blocks, counts);
}

class RunFormationParamTest
    : public ::testing::TestWithParam<
          std::tuple<int, uint64_t, Distribution, bool>> {};

TEST_P(RunFormationParamTest, RunsAreGloballySortedAndTiled) {
  auto [P, elements_per_pe, dist, randomize] = GetParam();
  SortConfig config = test::SmallConfig();
  config.randomize_blocks = randomize;

  test::RunPes(P, config, [&](PeContext& ctx, const SortConfig& cfg) {
    auto gen = workload::GenerateKV16(ctx.bm, dist, elements_per_pe,
                                      ctx.rank(), P, cfg.seed);
    RunFormationResult<KV16> rf = FormRuns<KV16>(ctx, cfg, gen.input);

    EXPECT_EQ(rf.total_elements,
              static_cast<uint64_t>(P) * elements_per_pe);
    ASSERT_EQ(rf.runs.num_runs(), rf.table.num_runs());

    uint64_t seen = 0;
    for (size_t r = 0; r < rf.runs.num_runs(); ++r) {
      const RunPiece<KV16>& piece = rf.runs.pieces[r];
      std::vector<KV16> data = ReadPiece(ctx, cfg, piece);
      ASSERT_EQ(data.size(), piece.size);
      EXPECT_TRUE(std::is_sorted(data.begin(), data.end(), KVLess()));
      seen += piece.size;

      // Piece metadata matches the replicated table.
      EXPECT_EQ(piece.global_start,
                rf.table.piece_start[r][ctx.rank()]);
      EXPECT_EQ(piece.global_start + piece.size,
                rf.table.piece_start[r][ctx.rank() + 1]);

      // Block first-records are correct.
      size_t epb = cfg.ElementsPerBlock<KV16>();
      for (size_t b = 0; b * epb < data.size(); ++b) {
        EXPECT_EQ(piece.block_first_records[b].value,
                  data[b * epb].value);
      }

      // Global sortedness across pieces: my first key must not precede the
      // previous PE's last key. Verify via allgather of boundary keys.
      struct Bound {
        uint64_t first_key, last_key;
        uint8_t non_empty;
      };
      Bound mine{piece.size ? data.front().key : 0,
                 piece.size ? data.back().key : 0,
                 static_cast<uint8_t>(piece.size ? 1 : 0)};
      auto bounds = ctx.comm->Allgather(mine);
      bool have_prev = false;
      uint64_t prev_last = 0;
      for (const Bound& b : bounds) {
        if (!b.non_empty) continue;
        if (have_prev) {
          EXPECT_LE(prev_last, b.first_key);
        }
        prev_last = b.last_key;
        have_prev = true;
      }

      // Samples: every K-th element with exact positions.
      const auto& samples = rf.samples.per_run[r];
      for (const auto& entry : samples) {
        if (entry.pos >= piece.global_start &&
            entry.pos < piece.global_start + piece.size) {
          EXPECT_EQ(entry.record.value,
                    data[entry.pos - piece.global_start].value);
        }
      }
    }
    EXPECT_EQ(ctx.comm->AllreduceSum<uint64_t>(seen), rf.total_elements);

    // Sample table is position-sorted per run.
    for (size_t r = 0; r < rf.samples.per_run.size(); ++r) {
      const auto& s = rf.samples.per_run[r];
      for (size_t i = 1; i < s.size(); ++i) {
        EXPECT_LT(s[i - 1].pos, s[i].pos);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RunFormationParamTest,
    ::testing::Combine(
        ::testing::Values(1, 2, 4),
        ::testing::Values<uint64_t>(100, 1500, 4096),
        ::testing::Values(Distribution::kUniform,
                          Distribution::kWorstCaseLocal,
                          Distribution::kAllEqual),
        ::testing::Values(false, true)));

TEST(RunFormationTest, NumberOfRunsMatchesMemory) {
  const int P = 2;
  SortConfig config = test::SmallConfig();  // 512 elements per PE per run
  test::RunPes(P, config, [&](PeContext& ctx, const SortConfig& cfg) {
    auto gen = workload::GenerateKV16(ctx.bm, Distribution::kUniform,
                                      2048, ctx.rank(), P, cfg.seed);
    auto rf = FormRuns<KV16>(ctx, cfg, gen.input);
    EXPECT_EQ(rf.runs.num_runs(), 4u);  // 2048 / 512
  });
}

TEST(RunFormationTest, InPlaceKeepsPeakNearInput) {
  const int P = 2;
  SortConfig config = test::SmallConfig();
  test::RunPes(P, config, [&](PeContext& ctx, const SortConfig& cfg) {
    auto gen = workload::GenerateKV16(ctx.bm, Distribution::kUniform,
                                      4096, ctx.rank(), P, cfg.seed);
    uint64_t input_blocks = gen.input.blocks.size();
    FormRuns<KV16>(ctx, cfg, gen.input);
    // Freed input blocks are recycled into run pieces: the peak should stay
    // within input + one run's worth of blocks (+ small slack).
    uint64_t run_blocks = cfg.memory_per_pe / cfg.block_size;
    EXPECT_LE(ctx.bm->peak_blocks_in_use(),
              input_blocks + run_blocks + 4);
  });
}

TEST(RunFormationTest, RandomizationChangesRunComposition) {
  // With locally sorted (worst-case) input and NO randomization, run 0 is
  // formed from every PE's smallest keys => run 0's key range is narrow.
  // With randomization it spans ~the full key range.
  const int P = 2;
  const uint64_t n = 4096;
  for (bool randomize : {false, true}) {
    SortConfig config = test::SmallConfig();
    config.randomize_blocks = randomize;
    test::RunPes(P, config, [&](PeContext& ctx, const SortConfig& cfg) {
      auto gen = workload::GenerateKV16(ctx.bm,
                                        Distribution::kWorstCaseLocal, n,
                                        ctx.rank(), P, cfg.seed);
      auto rf = FormRuns<KV16>(ctx, cfg, gen.input);
      ASSERT_GE(rf.runs.num_runs(), 4u);
      // Key range of run 0 from its samples, relative to global key range.
      const auto& s0 = rf.samples.per_run[0];
      ASSERT_FALSE(s0.empty());
      uint64_t min_key = UINT64_MAX, max_key = 0;
      for (const auto& e : s0) {
        min_key = std::min(min_key, e.record.key);
        max_key = std::max(max_key, e.record.key);
      }
      double spread =
          static_cast<double>(max_key - min_key) / static_cast<double>(UINT64_MAX);
      if (cfg.randomize_blocks) {
        EXPECT_GT(spread, 0.5) << "randomized run should span the keyspace";
      } else {
        EXPECT_LT(spread, 0.35) << "non-randomized run should be narrow";
      }
    });
  }
}

TEST(RunFormationTest, OverlapOffProducesSameRuns) {
  const int P = 2;
  const uint64_t n = 2000;
  std::mutex mu;
  std::vector<std::vector<uint64_t>> first_values(2);
  for (int variant = 0; variant < 2; ++variant) {
    SortConfig config = test::SmallConfig();
    config.overlap_run_formation = variant == 1;
    test::RunPes(P, config, [&](PeContext& ctx, const SortConfig& cfg) {
      auto gen = workload::GenerateKV16(ctx.bm, Distribution::kUniform, n,
                                        ctx.rank(), P, cfg.seed);
      auto rf = FormRuns<KV16>(ctx, cfg, gen.input);
      for (size_t r = 0; r < rf.runs.num_runs(); ++r) {
        auto data = ReadPiece(ctx, cfg, rf.runs.pieces[r]);
        std::lock_guard<std::mutex> lock(mu);
        for (const auto& rec : data) {
          first_values[variant].push_back(rec.value);
        }
      }
    });
  }
  std::sort(first_values[0].begin(), first_values[0].end());
  std::sort(first_values[1].begin(), first_values[1].end());
  EXPECT_EQ(first_values[0], first_values[1]);
}

}  // namespace
}  // namespace demsort::core
