// Tests of the cooperative distributed in-memory sort (§IV-B): after the
// collective call, PE i must hold exactly the i-th equal share of the
// globally sorted data, for every P, size and distribution combination.
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <tuple>
#include <vector>

#include "core/internal_sort.h"
#include "test_util.h"
#include "util/random.h"

namespace demsort::core {
namespace {

using test::KVLess;

enum class Dist { kRandom, kSorted, kReversed, kAllEqual, kFewKeys };

std::vector<KV16> MakeLocal(Dist dist, uint64_t n, int rank, int P) {
  Rng rng(1000 + rank);
  std::vector<KV16> data(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t gid = static_cast<uint64_t>(rank) * n + i;
    switch (dist) {
      case Dist::kRandom:
        data[i] = {rng.Next(), gid};
        break;
      case Dist::kSorted:
        data[i] = {gid, gid};
        break;
      case Dist::kReversed:
        data[i] = {static_cast<uint64_t>(P) * n - gid, gid};
        break;
      case Dist::kAllEqual:
        data[i] = {7, gid};
        break;
      case Dist::kFewKeys:
        data[i] = {rng.Below(3), gid};
        break;
    }
  }
  return data;
}

class InternalSortParamTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t, Dist>> {};

TEST_P(InternalSortParamTest, ExactEqualPartition) {
  auto [P, n, dist] = GetParam();
  std::mutex mu;
  std::vector<std::vector<KV16>> pieces(P);
  std::vector<uint64_t> starts(P);
  std::vector<std::vector<KV16>> inputs(P);

  SortConfig config = test::SmallConfig();
  test::RunPes(P, config, [&](PeContext& ctx, const SortConfig&) {
    std::vector<KV16> local = MakeLocal(dist, n, ctx.rank(), P);
    {
      std::lock_guard<std::mutex> lock(mu);
      inputs[ctx.rank()] = local;
    }
    InternalSortResult<KV16> result =
        InternalParallelSort<KV16>(ctx, std::move(local));
    std::lock_guard<std::mutex> lock(mu);
    pieces[ctx.rank()] = std::move(result.piece);
    starts[ctx.rank()] = result.piece_start;
    EXPECT_EQ(result.total, static_cast<uint64_t>(P) * n);
  });

  // Oracle: sort the concatenated input by (key, source PE, position) —
  // which for our data equals (key, value) since values are global ids.
  std::vector<KV16> all;
  for (auto& in : inputs) all.insert(all.end(), in.begin(), in.end());
  std::sort(all.begin(), all.end(), [](const KV16& a, const KV16& b) {
    return std::tie(a.key, a.value) < std::tie(b.key, b.value);
  });

  uint64_t total = static_cast<uint64_t>(P) * n;
  uint64_t offset = 0;
  for (int p = 0; p < P; ++p) {
    uint64_t expect_size = total / P + (static_cast<uint64_t>(p) <
                                        total % P ? 1 : 0);
    ASSERT_EQ(pieces[p].size(), expect_size) << "PE " << p;
    EXPECT_EQ(starts[p], offset);
    for (uint64_t i = 0; i < expect_size; ++i) {
      EXPECT_EQ(pieces[p][i].key, all[offset + i].key)
          << "PE " << p << " at " << i;
      EXPECT_EQ(pieces[p][i].value, all[offset + i].value)
          << "PE " << p << " at " << i;
    }
    offset += expect_size;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InternalSortParamTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 7),
                       ::testing::Values<uint64_t>(0, 1, 10, 257, 1000),
                       ::testing::Values(Dist::kRandom, Dist::kSorted,
                                         Dist::kReversed, Dist::kAllEqual,
                                         Dist::kFewKeys)));

TEST(InternalSortTest, UnevenLocalSizes) {
  const int P = 4;
  std::mutex mu;
  std::vector<std::vector<KV16>> pieces(P);
  SortConfig config = test::SmallConfig();
  test::RunPes(P, config, [&](PeContext& ctx, const SortConfig&) {
    // PE p contributes p*100 elements.
    uint64_t n = static_cast<uint64_t>(ctx.rank()) * 100;
    Rng rng(ctx.rank() + 55);
    std::vector<KV16> local(n);
    for (auto& r : local) r = {rng.Below(1000), rng.Next()};
    auto result = InternalParallelSort<KV16>(ctx, std::move(local));
    EXPECT_EQ(result.total, 600u);
    std::lock_guard<std::mutex> lock(mu);
    pieces[ctx.rank()] = std::move(result.piece);
  });
  // Equal split of 600 into 4 pieces of 150, globally ordered.
  uint64_t prev_last = 0;
  for (int p = 0; p < P; ++p) {
    ASSERT_EQ(pieces[p].size(), 150u);
    EXPECT_TRUE(std::is_sorted(pieces[p].begin(), pieces[p].end(),
                               KVLess()));
    if (p > 0) {
      EXPECT_GE(pieces[p].front().key, prev_last);
    }
    prev_last = pieces[p].back().key;
  }
}

TEST(InternalSortTest, SelectionRoundsAreLogarithmic) {
  const int P = 4;
  SortConfig config = test::SmallConfig();
  test::RunPes(P, config, [&](PeContext& ctx, const SortConfig&) {
    Rng rng(ctx.rank());
    std::vector<KV16> local(4096);
    for (auto& r : local) r = {rng.Next(), rng.Next()};
    auto result = InternalParallelSort<KV16>(ctx, std::move(local));
    // log2(4096) = 12; allow generous slack over the bound.
    EXPECT_LE(result.selection_rounds, 40u);
  });
}

}  // namespace
}  // namespace demsort::core
