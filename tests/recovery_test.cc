// Checkpointed, restartable sorts: the manifest format's torn-write
// defenses (CRC, atomic rename, stale-fingerprint and missing/truncated
// run-file fall-back-to-scratch), the FaultInjector's epoch schedules, and
// the end-to-end supervised-restart contract — kill one rank mid-phase, in
// each of the four phases, over the in-process fabric, real sockets, and a
// two-level hierarchical shape; the relaunched epoch must resume from the
// manifests, replay ONLY the interrupted phase onward, and produce output
// that validates, with the restart telemetry (restarts, phases_replayed)
// matching the injected history. A second failure during recovery and a
// spent restart budget (escalation to the containment CommError) close the
// loop.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/canonical_mergesort.h"
#include "core/checkpoint.h"
#include "core/pe_context.h"
#include "core/recovery.h"
#include "net/cluster.h"
#include "net/comm.h"
#include "net/fault_transport.h"
#include "net/hierarchical_transport.h"
#include "net/tcp_transport.h"
#include "workload/generators.h"
#include "workload/validator.h"

namespace demsort {
namespace {

constexpr int kP = 4;
constexpr uint64_t kElements = 4096;

std::string MakeTempDir() {
  char tmpl[] = "/tmp/demsort_recovery_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  DEMSORT_CHECK(dir != nullptr);
  return dir;
}

/// The deterministic test config: file backend rooted in `dir` (manifests
/// alongside run files), tiny blocks, and FIXED stream chunking/crediting —
/// the op sequence at the transport seam must reproduce exactly for the
/// phase-boundary calibration to carry over to the kill runs.
core::SortConfig MakeConfig(const std::string& dir) {
  core::SortConfig config;
  config.block_size = 4 * 1024;
  config.memory_per_pe = 64 * 1024;
  config.disks_per_pe = 2;
  config.threads_per_pe = 1;
  config.async_io = false;
  config.seed = 1;
  config.stream_chunk_mode = net::StreamChunkMode::kFixed;
  config.stream_credit_mode = net::StreamCreditMode::kStandalone;
  config.backend = io::BlockManager::BackendKind::kFile;
  config.file_dir = dir;
  config.checkpoint_dir = dir;
  return config;
}

/// Fast-failing supervision for tests (real backoff would only slow them).
net::RecoveryOptions FastRecovery(int max_restarts = 3) {
  net::RecoveryOptions r;
  r.max_restarts = max_restarts;
  r.backoff_base_ms = 1;
  r.jitter = 0;
  return r;
}

struct EpochReport {
  core::SortReport report;
  int resume = -1;
  bool validated = false;
};

struct SupervisedOutcome {
  int restarts = 0;
  /// The successful epoch's per-rank reports (each epoch overwrites them,
  /// so a completed run leaves exactly the final epoch's).
  std::vector<EpochReport> reports;
  std::vector<net::NetStatsSnapshot> stats;
};

/// Runs the checkpointed sort under supervision on the chosen backend with
/// `injector` wrapped around every endpoint, and reports how it ended.
/// This is the real harness idiom end to end: Prepare (collective resume
/// vote) before any per-epoch resources, PeResources with reuse_files on
/// resume, Bind to restore the interrupted phase, generate only on scratch.
/// With probe_pe >= 0, records the victim's operation clock after Bind and
/// at every phase-checkpoint commit into `boundaries` — the calibration
/// that turns "kill at op N" into "kill inside phase p".
SupervisedOutcome RunSupervisedSort(
    net::TransportKind kind, const core::SortConfig& config,
    std::shared_ptr<net::FaultInjector> injector,
    const net::RecoveryOptions& recovery_options, int probe_pe = -1,
    std::array<uint64_t, 5>* boundaries = nullptr) {
  SupervisedOutcome out;
  out.reports.resize(kP);
  std::mutex mu;
  std::vector<std::unique_ptr<net::FaultTransport>> wrappers;
  std::mutex wrap_mu;
  auto wrap = [&](net::Transport* base, int epoch) -> net::Transport* {
    std::lock_guard<std::mutex> lock(wrap_mu);
    // The harness relaunches strictly sequentially; the first wrapper of a
    // new epoch advances the injector (resetting every PE's op clock).
    while (injector->epoch() < epoch) injector->AdvanceEpoch();
    wrappers.push_back(std::make_unique<net::FaultTransport>(base, injector));
    return wrappers.back().get();
  };

  auto body = [&](net::Comm& comm) {
    const int rank = comm.rank();
    core::RecoveryRuntime<core::KV16> recovery(config, rank, comm.size());
    const int resume = recovery.Prepare(comm, kElements);
    core::PeResources resources(&comm, config, /*reuse_files=*/resume > 0);
    core::PeContext& ctx = resources.ctx();
    recovery.Bind(ctx);
    if (rank == probe_pe && boundaries != nullptr) {
      (*boundaries)[0] = injector->OpCount(probe_pe);
      recovery.on_phase_checkpoint = [boundaries, &injector,
                                      probe_pe](int phase) {
        (*boundaries)[static_cast<size_t>(phase)] =
            injector->OpCount(probe_pe);
      };
    }
    core::LocalInput input;
    MultisetChecksum checksum;
    if (resume == 0) {
      auto gen = workload::GenerateKV16(ctx.bm,
                                        workload::Distribution::kUniform,
                                        kElements, rank, comm.size(),
                                        config.seed);
      input = gen.input;
      checksum = gen.checksum;
      recovery.SetInputChecksum(checksum);
    } else {
      checksum = recovery.input_checksum();
    }
    auto sorted = core::CanonicalMergeSort<core::KV16>(ctx, config, input,
                                                       &recovery);
    auto v = workload::ValidateCollective<core::KV16>(
        ctx, sorted.blocks, sorted.num_elements, checksum);
    std::lock_guard<std::mutex> lock(mu);
    out.reports[rank].report = sorted.report;
    out.reports[rank].resume = resume;
    out.reports[rank].validated = v.ok();
  };

  if (kind == net::TransportKind::kInProc) {
    net::Cluster::Options options;
    options.num_pes = kP;
    options.wrap_transport = wrap;
    auto s = net::Cluster::RunSupervised(options, recovery_options, body);
    out.restarts = s.restarts;
    out.stats = s.result.stats;
  } else if (kind == net::TransportKind::kTcp) {
    auto s = net::TcpCluster::RunSupervised(kP, body, recovery_options,
                                            net::TcpTransport::Options(),
                                            wrap);
    out.restarts = s.restarts;
    out.stats = s.stats;
  } else {
    net::HierCluster::Options options;
    // The uneven {1, P-1} shape: a singleton node plus a multi-PE node, so
    // kills land on a node leader's transport as well as followers'.
    options.topology = net::Topology(std::vector<int>{1, kP - 1});
    options.wrap_transport = wrap;
    auto s = net::HierCluster::RunSupervised(options, recovery_options, body);
    out.restarts = s.restarts;
    out.stats = s.result.stats;
  }
  return out;
}

/// An injector whose single event never fires (for calibration / clean
/// supervised runs).
std::shared_ptr<net::FaultInjector> NeverFires(int victim) {
  net::FaultInjector::Spec spec;
  spec.victim_pe = victim;
  spec.fail_at_op = ~uint64_t{0} / 2;
  return std::make_shared<net::FaultInjector>(spec);
}

void ExpectAllValidated(const SupervisedOutcome& out, int expected_resume) {
  for (int pe = 0; pe < kP; ++pe) {
    EXPECT_TRUE(out.reports[pe].validated) << "PE " << pe;
    EXPECT_EQ(out.reports[pe].resume, expected_resume) << "PE " << pe;
  }
}

// ------------------------------------------------- manifest robustness ----

TEST(CheckpointManifestTest, RoundTripPreservesEveryField) {
  std::string dir = MakeTempDir();
  core::CheckpointManifest m;
  m.config_fingerprint = 0xFEEDFACEDEADBEEFULL;
  m.completed_phase = 3;
  m.restarts = 2;
  m.durable_disk_bytes = {4096, 123456};
  m.sections[1] = std::string("run formation state\0with NUL", 28);
  m.sections[2] = "splitters";
  m.sections[3] = std::string(1000, 'x');
  auto written = m.WriteAtomic(dir, /*rank=*/7);
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  EXPECT_GT(written.value(), 0u);

  auto loaded = core::CheckpointManifest::Load(dir, 7);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().config_fingerprint, m.config_fingerprint);
  EXPECT_EQ(loaded.value().completed_phase, 3);
  EXPECT_EQ(loaded.value().restarts, 2u);
  EXPECT_EQ(loaded.value().durable_disk_bytes, m.durable_disk_bytes);
  for (int p = 1; p <= core::CheckpointManifest::kNumPhases; ++p) {
    EXPECT_EQ(loaded.value().sections[p], m.sections[p]) << "section " << p;
  }
  std::filesystem::remove_all(dir);
}

TEST(CheckpointManifestTest, RewriteReplacesAtomically) {
  std::string dir = MakeTempDir();
  core::CheckpointManifest m;
  m.completed_phase = 1;
  m.sections[1] = "first";
  ASSERT_TRUE(m.WriteAtomic(dir, 0).ok());
  m.completed_phase = 2;
  m.sections[2] = "second";
  ASSERT_TRUE(m.WriteAtomic(dir, 0).ok());
  auto loaded = core::CheckpointManifest::Load(dir, 0);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().completed_phase, 2);
  EXPECT_EQ(loaded.value().sections[2], "second");
  // No temp file may outlive a successful rename.
  EXPECT_FALSE(std::filesystem::exists(
      core::CheckpointManifest::PathFor(dir, 0) + ".tmp"));
  std::filesystem::remove_all(dir);
}

TEST(CheckpointManifestTest, CorruptPayloadFailsTheCrc) {
  std::string dir = MakeTempDir();
  core::CheckpointManifest m;
  m.completed_phase = 4;
  m.sections[4] = std::string(256, 'm');
  ASSERT_TRUE(m.WriteAtomic(dir, 0).ok());
  std::string path = core::CheckpointManifest::PathFor(dir, 0);
  {
    // Flip one payload byte in place: the CRC must catch it.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-5, std::ios::end);
    char b = 0;
    f.read(&b, 1);
    f.seekp(-5, std::ios::end);
    b = static_cast<char>(b ^ 0x40);
    f.write(&b, 1);
  }
  auto loaded = core::CheckpointManifest::Load(dir, 0);
  EXPECT_FALSE(loaded.ok());
  std::filesystem::remove_all(dir);
}

TEST(CheckpointManifestTest, TruncatedFileIsDetectedAsTorn) {
  std::string dir = MakeTempDir();
  core::CheckpointManifest m;
  m.completed_phase = 2;
  m.sections[2] = std::string(512, 's');
  ASSERT_TRUE(m.WriteAtomic(dir, 0).ok());
  std::string path = core::CheckpointManifest::PathFor(dir, 0);
  auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  auto loaded = core::CheckpointManifest::Load(dir, 0);
  EXPECT_FALSE(loaded.ok());
  std::filesystem::remove_all(dir);
}

TEST(CheckpointManifestTest, LeftoverTempFileIsIgnoredAndMissingIsClean) {
  std::string dir = MakeTempDir();
  // A crash between temp-write and rename leaves only "<path>.tmp": Load
  // must not trust it — the manifest is simply absent.
  std::string path = core::CheckpointManifest::PathFor(dir, 3);
  std::ofstream(path + ".tmp") << "half-written garbage";
  auto loaded = core::CheckpointManifest::Load(dir, 3);
  EXPECT_FALSE(loaded.ok());

  // And once a real manifest exists, a stale temp alongside is harmless.
  core::CheckpointManifest m;
  m.completed_phase = 1;
  ASSERT_TRUE(m.WriteAtomic(dir, 3).ok());
  std::ofstream(path + ".tmp") << "stale";
  auto reloaded = core::CheckpointManifest::Load(dir, 3);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded.value().completed_phase, 1);
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------ fault-injector seams ----

TEST(FaultInjectorEpochTest, EventsArmOnlyInTheirEpoch) {
  net::FaultInjector::Spec first;
  first.victim_pe = 1;
  first.fail_at_op = 3;
  first.epoch = 0;
  net::FaultInjector::Spec second;
  second.victim_pe = 2;
  second.fail_at_op = 2;
  second.epoch = 1;
  net::FaultInjector injector({first, second});

  // Epoch 0: only the first event can fire, at exactly its op.
  EXPECT_FALSE(injector.CountPeOp(1));
  EXPECT_FALSE(injector.CountPeOp(2));  // second event is not armed yet
  EXPECT_FALSE(injector.CountPeOp(2));
  EXPECT_FALSE(injector.CountPeOp(1));
  EXPECT_TRUE(injector.CountPeOp(1));   // op 3 of PE 1
  EXPECT_FALSE(injector.CountPeOp(1));  // fires exactly once
  EXPECT_EQ(injector.OpCount(1), 4u);

  injector.AdvanceEpoch();
  EXPECT_EQ(injector.epoch(), 1);
  EXPECT_EQ(injector.OpCount(1), 0u);   // clocks restart per epoch
  EXPECT_FALSE(injector.CountPeOp(2));
  EXPECT_TRUE(injector.CountPeOp(2));   // op 2 of PE 2, epoch 1
  EXPECT_FALSE(injector.CountPeOp(2));
  // The status of the last fired event names its epoch.
  EXPECT_NE(injector.FaultStatus().message().find("epoch 1"),
            std::string::npos);
}

// ------------------------------------------------------- e2e recovery ----

TEST(RecoverySortTest, CleanRunCheckpointsEveryPhase) {
  std::string dir = MakeTempDir();
  auto out = RunSupervisedSort(net::TransportKind::kInProc, MakeConfig(dir),
                               NeverFires(0), FastRecovery());
  EXPECT_EQ(out.restarts, 0);
  ExpectAllValidated(out, /*expected_resume=*/0);
  for (int pe = 0; pe < kP; ++pe) {
    auto m = core::CheckpointManifest::Load(dir, pe);
    ASSERT_TRUE(m.ok()) << m.status().ToString();
    EXPECT_EQ(m.value().completed_phase, core::CheckpointManifest::kNumPhases);
    EXPECT_EQ(m.value().restarts, 0u);
    EXPECT_GT(out.stats[pe].checkpoint_bytes, 0u);
  }
  std::filesystem::remove_all(dir);
}

/// The heart of the PR: for every phase p, calibrate the victim's op count
/// at each phase-checkpoint commit on a throwaway directory, then kill the
/// victim two operations after the (p-1)-commit — squarely inside phase p
/// with every rank's manifest agreeing on p-1. The supervised relaunch
/// must consume exactly one restart, resume at p-1 on every rank, replay
/// only phases p..4, and validate; and for p >= 2 the resumed epoch's run
/// formation must do NO disk I/O (completed phases are skipped, not
/// re-run).
void KillEachPhaseAndRecover(
    net::TransportKind kind,
    const std::function<void(core::SortConfig&)>& tweak = {}) {
  auto make_config = [&](const std::string& dir) {
    core::SortConfig config = MakeConfig(dir);
    if (tweak) tweak(config);
    return config;
  };
  const int victim = 2;
  std::array<uint64_t, 5> boundaries{};
  {
    std::string calib_dir = MakeTempDir();
    auto calib = RunSupervisedSort(kind, make_config(calib_dir),
                                   NeverFires(victim), FastRecovery(),
                                   victim, &boundaries);
    ASSERT_EQ(calib.restarts, 0);
    ExpectAllValidated(calib, 0);
    std::filesystem::remove_all(calib_dir);
  }
  for (int phase = 1; phase <= 4; ++phase) {
    ASSERT_GT(boundaries[phase], boundaries[phase - 1] + 2)
        << "phase " << phase << " too narrow to target";
    net::FaultInjector::Spec spec;
    spec.victim_pe = victim;
    spec.fail_at_op = boundaries[phase - 1] + 2;
    spec.reason = "kill in phase " + std::to_string(phase);
    std::string dir = MakeTempDir();
    auto out = RunSupervisedSort(kind, make_config(dir),
                                 std::make_shared<net::FaultInjector>(spec),
                                 FastRecovery());
    EXPECT_EQ(out.restarts, 1) << "phase " << phase;
    ExpectAllValidated(out, /*expected_resume=*/phase - 1);
    for (int pe = 0; pe < kP; ++pe) {
      EXPECT_EQ(out.stats[pe].restarts, 1u) << "phase " << phase;
      EXPECT_EQ(out.stats[pe].phases_replayed,
                static_cast<uint64_t>(5 - phase))
          << "phase " << phase << " PE " << pe;
      if (phase >= 2) {
        // Resume >= 1: run formation is restored from the manifest, never
        // re-executed — its I/O counters must stay silent.
        EXPECT_EQ(out.reports[pe].report.Get(core::Phase::kRunFormation)
                      .io.bytes(),
                  0u)
            << "phase " << phase << " PE " << pe
            << " re-ran a completed phase";
      }
    }
    std::filesystem::remove_all(dir);
  }
}

TEST(RecoverySortTest, KillEachPhaseInprocRecovers) {
  KillEachPhaseAndRecover(net::TransportKind::kInProc);
}

TEST(RecoverySortTest, KillEachPhaseTcpRecovers) {
  KillEachPhaseAndRecover(net::TransportKind::kTcp);
}

TEST(RecoverySortTest, KillEachPhaseHierRecovers) {
  KillEachPhaseAndRecover(net::TransportKind::kHier);
}

// The same sweep on every new file-backed storage backend: the durable
// contract (Flush before the manifest barrier, TrustOnly on reopen,
// durable-length validation) must hold regardless of how the bytes reach
// the file. Kinds the host cannot serve skip with the probe's reason.

void KillEachPhaseOnBackend(io::BackendKind backend) {
  {
    std::string probe_dir = MakeTempDir();
    Status probe =
        io::BlockManager::ProbeBackend(backend, 4 * 1024, probe_dir);
    std::filesystem::remove_all(probe_dir);
    if (!probe.ok()) {
      GTEST_SKIP() << io::BackendKindName(backend)
                   << " unavailable here: " << probe.ToString();
    }
  }
  KillEachPhaseAndRecover(net::TransportKind::kInProc,
                          [backend](core::SortConfig& config) {
                            config.backend = backend;
                          });
}

TEST(RecoverySortTest, KillEachPhaseMmapBackendRecovers) {
  KillEachPhaseOnBackend(io::BackendKind::kMmap);
}

TEST(RecoverySortTest, KillEachPhaseDirectBackendRecovers) {
  KillEachPhaseOnBackend(io::BackendKind::kDirect);
}

TEST(RecoverySortTest, KillEachPhaseUringBackendRecovers) {
  KillEachPhaseOnBackend(io::BackendKind::kUring);
}

TEST(RecoverySortTest, KillEachPhaseParallelMergeRecovers) {
  // The range-partitioned multi-threaded final merge must keep the same
  // checkpoint seams: the merge output manifest a resumed epoch restores is
  // identical no matter how many workers produced it, and killing inside
  // any phase with a parallel pool recovers exactly like single-threaded.
  KillEachPhaseAndRecover(net::TransportKind::kInProc,
                          [](core::SortConfig& config) {
                            config.threads_per_pe = 4;
                          });
}

TEST(RecoverySortTest, KillEachPhaseStripedAsyncFilesRecovers) {
  // Striped files under the async pump at queue depth: the recovery path
  // must reopen all K stripe files per disk and the striping-aware
  // durable-length check must accept the healthy layout.
  KillEachPhaseAndRecover(net::TransportKind::kInProc,
                          [](core::SortConfig& config) {
                            config.async_io = true;
                            config.files_per_disk = 2;
                            config.io_queue_depth = 4;
                          });
}

TEST(RecoverySortTest, SecondFailureDuringRecoveryConsumesTwoRestarts) {
  // Epoch 0 dies mid-sort; the relaunched epoch 1 dies again (a different
  // victim, early); epoch 2 completes. The budget admits both.
  net::FaultInjector::Spec first;
  first.victim_pe = 1;
  first.fail_at_op = 60;
  first.epoch = 0;
  net::FaultInjector::Spec second;
  second.victim_pe = 3;
  second.fail_at_op = 25;
  second.epoch = 1;
  std::string dir = MakeTempDir();
  auto out = RunSupervisedSort(
      net::TransportKind::kInProc, MakeConfig(dir),
      std::make_shared<net::FaultInjector>(
          std::vector<net::FaultInjector::Spec>{first, second}),
      FastRecovery(/*max_restarts=*/3));
  EXPECT_EQ(out.restarts, 2);
  for (int pe = 0; pe < kP; ++pe) {
    EXPECT_TRUE(out.reports[pe].validated) << "PE " << pe;
    EXPECT_EQ(out.stats[pe].restarts, 2u);
  }
  std::filesystem::remove_all(dir);
}

TEST(RecoverySortTest, SpentBudgetEscalatesTheContainmentError) {
  // A kill in every epoch: with max_restarts = 2 the third failure must
  // re-raise CommError to the caller — the PR 3 containment contract is
  // the floor recovery stands on, not something it replaces.
  std::vector<net::FaultInjector::Spec> events(3);
  for (int e = 0; e < 3; ++e) {
    events[e].victim_pe = 1;
    events[e].fail_at_op = 40;
    events[e].epoch = e;
  }
  std::string dir = MakeTempDir();
  EXPECT_THROW(
      RunSupervisedSort(net::TransportKind::kInProc, MakeConfig(dir),
                        std::make_shared<net::FaultInjector>(events),
                        FastRecovery(/*max_restarts=*/2)),
      net::CommError);
  std::filesystem::remove_all(dir);
}

// ------------------------------------- manifest-vs-reality fall-backs ----

/// After a completed run, re-launching with a tampered checkpoint state
/// must fall back to a from-scratch sort that still validates — never
/// crash, never trust the stale data.
SupervisedOutcome RerunAfterTamper(const core::SortConfig& config,
                                   const std::function<void()>& tamper) {
  auto first = RunSupervisedSort(net::TransportKind::kInProc, config,
                                 NeverFires(0), FastRecovery());
  EXPECT_EQ(first.restarts, 0);
  ExpectAllValidated(first, 0);
  tamper();
  return RunSupervisedSort(net::TransportKind::kInProc, config,
                           NeverFires(0), FastRecovery());
}

TEST(RecoveryFallbackTest, CompletedManifestShortCircuitsTheRerun) {
  // No tampering at all: the second launch finds completed_phase == 4
  // everywhere and replays nothing — it reassembles the output from the
  // manifests and validates it.
  std::string dir = MakeTempDir();
  auto out = RerunAfterTamper(MakeConfig(dir), [] {});
  ExpectAllValidated(out, /*expected_resume=*/4);
  for (int pe = 0; pe < kP; ++pe) {
    EXPECT_EQ(out.reports[pe].report.Get(core::Phase::kRunFormation)
                  .io.bytes(),
              0u);
    EXPECT_EQ(out.reports[pe].report.Get(core::Phase::kAllToAll).io.bytes(),
              0u);
  }
  std::filesystem::remove_all(dir);
}

TEST(RecoveryFallbackTest, CorruptManifestCrcFallsBackToScratch) {
  std::string dir = MakeTempDir();
  auto out = RerunAfterTamper(MakeConfig(dir), [&] {
    std::string path = core::CheckpointManifest::PathFor(dir, 1);
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-1, std::ios::end);
    char b = 0;
    f.read(&b, 1);
    f.seekp(-1, std::ios::end);
    b = static_cast<char>(b ^ 0xFF);
    f.write(&b, 1);
  });
  // One rank's torn manifest drags the cluster vote to scratch (min rule).
  ExpectAllValidated(out, /*expected_resume=*/0);
  std::filesystem::remove_all(dir);
}

TEST(RecoveryFallbackTest, StaleConfigFingerprintFallsBackToScratch) {
  std::string dir = MakeTempDir();
  core::SortConfig config = MakeConfig(dir);
  auto first = RunSupervisedSort(net::TransportKind::kInProc, config,
                                 NeverFires(0), FastRecovery());
  ExpectAllValidated(first, 0);
  // Same directory, different input seed: the manifests describe another
  // job and must be rejected wholesale, not half-resumed.
  config.seed = 99;
  auto out = RunSupervisedSort(net::TransportKind::kInProc, config,
                               NeverFires(0), FastRecovery());
  ExpectAllValidated(out, /*expected_resume=*/0);
  std::filesystem::remove_all(dir);
}

TEST(RecoveryFallbackTest, MissingRunFileFallsBackToScratch) {
  std::string dir = MakeTempDir();
  auto out = RerunAfterTamper(MakeConfig(dir), [&] {
    std::filesystem::remove(io::BlockManager::DiskFilePath(dir, 2, 0));
  });
  ExpectAllValidated(out, /*expected_resume=*/0);
  std::filesystem::remove_all(dir);
}

TEST(RecoveryFallbackTest, TruncatedRunFileFallsBackToScratch) {
  // The torn-tail regression: a run file shorter than the durable length
  // its manifest checkpointed means blocks the manifest vouches for are
  // gone. FileBackend::Open would happily round the length UP and serve
  // garbage reads — the manifest's durable_disk_bytes is what refuses it.
  std::string dir = MakeTempDir();
  auto out = RerunAfterTamper(MakeConfig(dir), [&] {
    std::string path = io::BlockManager::DiskFilePath(dir, 2, 1);
    auto size = std::filesystem::file_size(path);
    ASSERT_GT(size, 100u);
    std::filesystem::resize_file(path, size - 100);
  });
  ExpectAllValidated(out, /*expected_resume=*/0);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace demsort
