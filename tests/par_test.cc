#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <numeric>
#include <random>
#include <span>
#include <vector>

#include "core/record.h"
#include "par/loser_tree.h"
#include "par/multiway_merge.h"
#include "par/parallel_sort.h"
#include "par/thread_pool.h"
#include "util/random.h"

namespace demsort::par {
namespace {

using demsort::core::KV16;
using KVLess = demsort::core::RecordTraits<KV16>::Less;

struct IntLess {
  bool operator()(int a, int b) const { return a < b; }
};

// --------------------------------------------------------- ThreadPool ----

TEST(ThreadPoolTest, InlineWhenZeroThreads) {
  ThreadPool pool(0);
  std::atomic<int> sum{0};
  pool.ParallelFor(10, [&](size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, RunsAllTasksOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SequentialBatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    pool.ParallelFor(7, [&](size_t) { count++; });
    EXPECT_EQ(count.load(), 7);
  }
}

TEST(ThreadPoolTest, ParallelChunksCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelChunks(0, 1000, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) hits[i]++;
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, EmptyWorkIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [&](size_t) { FAIL(); });
  pool.ParallelChunks(5, 5, [&](size_t, size_t) { FAIL(); });
}

// ---------------------------------------------------------- LoserTree ----

TEST(LoserTreeTest, SingleSource) {
  LoserTree<int, IntLess> tree(1);
  tree.InitSource(0, 7);
  tree.Build();
  EXPECT_FALSE(tree.Empty());
  EXPECT_EQ(tree.Winner(), 7);
  tree.ExhaustWinner();
  EXPECT_TRUE(tree.Empty());
}

TEST(LoserTreeTest, AllSourcesExhausted) {
  LoserTree<int, IntLess> tree(3);
  tree.Build();
  EXPECT_TRUE(tree.Empty());
}

TEST(LoserTreeTest, MergesTwoSources) {
  LoserTree<int, IntLess> tree(2);
  tree.InitSource(0, 2);
  tree.InitSource(1, 1);
  tree.Build();
  EXPECT_EQ(tree.WinnerSource(), 1u);
  EXPECT_EQ(tree.Winner(), 1);
  tree.ReplaceWinner(3);
  EXPECT_EQ(tree.Winner(), 2);
}

TEST(LoserTreeTest, TieBreaksBySourceIndex) {
  LoserTree<int, IntLess> tree(4);
  for (size_t s = 0; s < 4; ++s) tree.InitSource(s, 5);
  tree.Build();
  for (size_t expect = 0; expect < 4; ++expect) {
    EXPECT_EQ(tree.WinnerSource(), expect);
    tree.ExhaustWinner();
  }
  EXPECT_TRUE(tree.Empty());
}

TEST(LoserTreeTest, NonPowerOfTwoSources) {
  for (size_t k : {3u, 5u, 6u, 7u, 9u, 13u}) {
    LoserTree<int, IntLess> tree(k);
    for (size_t s = 0; s < k; ++s) {
      tree.InitSource(s, static_cast<int>(k - s));
    }
    tree.Build();
    // Winner should be the largest s (smallest value k-s).
    EXPECT_EQ(tree.WinnerSource(), k - 1) << "k=" << k;
  }
}

// ------------------------------------------------------ MultiwayMerge ----

std::vector<std::vector<int>> MakeSortedSequences(size_t k, size_t avg_len,
                                                  uint64_t seed,
                                                  int key_range = 1000000) {
  Rng rng(seed);
  std::vector<std::vector<int>> seqs(k);
  for (auto& s : seqs) {
    size_t len = rng.Below(2 * avg_len + 1);
    s.resize(len);
    for (auto& x : s) x = static_cast<int>(rng.Below(key_range));
    std::sort(s.begin(), s.end());
  }
  return seqs;
}

TEST(MultiwayMergeTest, MatchesStdSort) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    auto seqs = MakeSortedSequences(1 + seed % 7, 50, seed);
    std::vector<std::span<const int>> spans;
    std::vector<int> expect;
    for (auto& s : seqs) {
      spans.emplace_back(s.data(), s.size());
      expect.insert(expect.end(), s.begin(), s.end());
    }
    std::sort(expect.begin(), expect.end());
    std::vector<int> out(expect.size());
    size_t n = MultiwayMerge<int, IntLess>(spans, out.data());
    EXPECT_EQ(n, expect.size());
    EXPECT_EQ(out, expect);
  }
}

TEST(MultiwayMergeTest, EmptyInputs) {
  std::vector<std::span<const int>> spans;
  std::vector<int> out;
  EXPECT_EQ((MultiwayMerge<int, IntLess>(spans, out.data())), 0u);

  std::vector<int> empty;
  spans.assign(3, std::span<const int>(empty.data(), 0));
  EXPECT_EQ((MultiwayMerge<int, IntLess>(spans, out.data())), 0u);
}

TEST(MultiwayMergeTest, HeavyDuplicates) {
  auto seqs = MakeSortedSequences(5, 200, 99, /*key_range=*/3);
  std::vector<std::span<const int>> spans;
  std::vector<int> expect;
  for (auto& s : seqs) {
    spans.emplace_back(s.data(), s.size());
    expect.insert(expect.end(), s.begin(), s.end());
  }
  std::sort(expect.begin(), expect.end());
  std::vector<int> out(expect.size());
  MultiwayMerge<int, IntLess>(spans, out.data());
  EXPECT_EQ(out, expect);
}

TEST(MultiwayMergeTest, StableAcrossSources) {
  // Equal keys must come out in source order: merge KV16 with equal keys
  // and per-source values; output values must be grouped by source.
  std::vector<std::vector<KV16>> seqs(3);
  for (uint64_t s = 0; s < 3; ++s) {
    for (int i = 0; i < 4; ++i) seqs[s].push_back({7, s});
  }
  std::vector<std::span<const KV16>> spans;
  for (auto& s : seqs) spans.emplace_back(s.data(), s.size());
  std::vector<KV16> out(12);
  MultiwayMerge<KV16, KVLess>(spans, out.data());
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(out[i].value, static_cast<uint64_t>(i / 4));
  }
}

TEST(ParallelMultiwayMergeTest, MatchesSequential) {
  ThreadPool pool(4);
  auto seqs = MakeSortedSequences(6, 5000, 1234);
  std::vector<std::span<const int>> spans;
  size_t total = 0;
  for (auto& s : seqs) {
    spans.emplace_back(s.data(), s.size());
    total += s.size();
  }
  std::vector<int> seq_out(total), par_out(total);
  MultiwayMerge<int, IntLess>(spans, seq_out.data());
  ParallelMultiwayMerge<int, IntLess>(pool, spans, par_out.data());
  EXPECT_EQ(par_out, seq_out);
}

// ------------------------------------------------------- ParallelSort ----

class ParallelSortParamTest
    : public ::testing::TestWithParam<std::tuple<int, size_t, int>> {};

TEST_P(ParallelSortParamTest, MatchesStdSort) {
  auto [threads, n, key_range] = GetParam();
  ThreadPool pool(threads);
  Rng rng(n * 31 + threads);
  std::vector<KV16> data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i].key = rng.Below(static_cast<uint64_t>(key_range));
    data[i].value = i;
  }
  std::vector<KV16> expect = data;
  std::stable_sort(expect.begin(), expect.end(), KVLess());
  ParallelSort<KV16, KVLess>(pool, std::span<KV16>(data));
  ASSERT_EQ(data.size(), expect.size());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(data[i].key, expect[i].key) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelSortParamTest,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values<size_t>(0, 1, 100, 10000, 50000),
                       ::testing::Values(2, 1000000)));

TEST(ParallelSortTest, AlreadySorted) {
  ThreadPool pool(4);
  std::vector<KV16> data(20000);
  for (size_t i = 0; i < data.size(); ++i) data[i] = {i, i};
  ParallelSort<KV16, KVLess>(pool, std::span<KV16>(data));
  for (size_t i = 0; i < data.size(); ++i) EXPECT_EQ(data[i].key, i);
}

TEST(ParallelSortTest, ReverseSorted) {
  ThreadPool pool(2);
  std::vector<KV16> data(30000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = {data.size() - i, i};
  }
  ParallelSort<KV16, KVLess>(pool, std::span<KV16>(data));
  for (size_t i = 1; i < data.size(); ++i) {
    EXPECT_LE(data[i - 1].key, data[i].key);
  }
}

// --------------------------------------------------- SentinelLoserTree ----

constexpr int kIntSentinel = std::numeric_limits<int>::max();

TEST(SentinelLoserTreeTest, SingleSource) {
  SentinelLoserTree<int, IntLess> tree(1, kIntSentinel);
  tree.InitSource(0, 7);
  tree.Build();
  EXPECT_EQ(tree.live(), 1u);
  EXPECT_EQ(tree.Winner(), 7);
  tree.ExhaustWinner();
  EXPECT_TRUE(tree.Empty());
}

TEST(SentinelLoserTreeTest, LiveSourceBeatsSentinelValuedItem) {
  // A real item EQUAL to the sentinel must still win against exhausted
  // sources: exhaustion biases the tie-break rank, not the item compare.
  SentinelLoserTree<int, IntLess> tree(3, kIntSentinel);
  tree.InitSource(0, 1);
  tree.InitSource(2, kIntSentinel);  // real item at the sentinel value
  tree.Build();
  EXPECT_EQ(tree.live(), 2u);
  EXPECT_EQ(tree.WinnerSource(), 0u);
  tree.ExhaustWinner();
  EXPECT_EQ(tree.live(), 1u);
  EXPECT_EQ(tree.WinnerSource(), 2u);
  EXPECT_EQ(tree.Winner(), kIntSentinel);
  tree.ExhaustWinner();
  EXPECT_TRUE(tree.Empty());
}

TEST(SentinelLoserTreeTest, TieBreaksBySourceIndex) {
  SentinelLoserTree<int, IntLess> tree(4, kIntSentinel);
  for (size_t s = 0; s < 4; ++s) tree.InitSource(s, 5);
  tree.Build();
  for (size_t expect = 0; expect < 4; ++expect) {
    EXPECT_EQ(tree.WinnerSource(), expect);
    tree.ExhaustWinner();
  }
  EXPECT_TRUE(tree.Empty());
}

TEST(SentinelLoserTreeTest, RunnerUpSourceIsSecondBest) {
  SentinelLoserTree<int, IntLess> tree(5, kIntSentinel);
  int heads[] = {40, 10, 30, 20, 50};
  for (size_t s = 0; s < 5; ++s) tree.InitSource(s, heads[s]);
  tree.Build();
  EXPECT_EQ(tree.WinnerSource(), 1u);
  EXPECT_EQ(tree.RunnerUpSource(), 3u);  // head 20 is second-smallest
  tree.ReplaceWinner(25);
  EXPECT_EQ(tree.WinnerSource(), 3u);
  EXPECT_EQ(tree.RunnerUpSource(), 1u);  // now 25 at source 1
  // On ties the runner-up is the lowest live source index among the tied.
  tree.ReplaceWinner(25);
  EXPECT_EQ(tree.WinnerSource(), 1u);
  EXPECT_EQ(tree.RunnerUpSource(), 3u);
}

TEST(SentinelLoserTreeTest, LiveCountTracksExhaustion) {
  SentinelLoserTree<int, IntLess> tree(6, kIntSentinel);
  tree.InitSource(1, 3);
  tree.InitSource(4, 1);
  tree.Build();
  EXPECT_EQ(tree.live(), 2u);
  EXPECT_TRUE(tree.IsLive(1));
  EXPECT_TRUE(tree.IsLive(4));
  EXPECT_FALSE(tree.IsLive(0));
  tree.ExhaustWinner();
  EXPECT_EQ(tree.live(), 1u);
  EXPECT_FALSE(tree.IsLive(4));
  tree.ExhaustWinner();
  EXPECT_TRUE(tree.Empty());
}

/// Merge k random sorted runs with both trees and require identical
/// (value, source) output streams — the sentinel tree must preserve the
/// exact (key, source) total order of the classic tree.
TEST(SentinelLoserTreeTest, MatchesClassicTreeOnRandomRuns) {
  std::mt19937 rng(20260809);
  for (int trial = 0; trial < 20; ++trial) {
    size_t k = 1 + rng() % 9;
    std::vector<std::vector<int>> runs(k);
    for (auto& run : runs) {
      run.resize(rng() % 60);
      // Narrow key range to force many cross-run ties.
      for (auto& x : run) x = static_cast<int>(rng() % 12);
      std::sort(run.begin(), run.end());
    }
    auto drain = [&](auto& tree) {
      std::vector<size_t> pos(k, 0);
      for (size_t s = 0; s < k; ++s) {
        if (!runs[s].empty()) tree.InitSource(s, runs[s][0]);
        pos[s] = 1;
      }
      tree.Build();
      std::vector<std::pair<int, size_t>> out;
      while (!tree.Empty()) {
        size_t w = tree.WinnerSource();
        out.emplace_back(tree.Winner(), w);
        if (pos[w] < runs[w].size()) {
          tree.ReplaceWinner(runs[w][pos[w]++]);
        } else {
          tree.ExhaustWinner();
        }
      }
      return out;
    };
    LoserTree<int, IntLess> classic(k);
    SentinelLoserTree<int, IntLess> sentinel(k, kIntSentinel);
    auto expect = drain(classic);
    auto got = drain(sentinel);
    ASSERT_EQ(got, expect) << "trial " << trial << " k=" << k;
  }
}

// -------------------------------------------------------- SequenceGate ----

TEST(SequenceGateTest, SingleThreadTurnsAdvanceInOrder) {
  SequenceGate gate;
  for (size_t t = 0; t < 5; ++t) {
    EXPECT_TRUE(gate.IsTurn(t));
    EXPECT_FALSE(gate.IsTurn(t + 1));
    gate.WaitTurn(t);  // must not block on the current turn
    gate.Advance();
  }
}

TEST(SequenceGateTest, OrdersParallelForDelivery) {
  // The ordered-sink idiom of the parallel merge: workers pick up tasks in
  // any interleaving but hand over their output strictly in task order.
  ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    SequenceGate gate;
    std::vector<size_t> delivered;
    pool.ParallelFor(64, [&](size_t t) {
      gate.WaitTurn(t);
      delivered.push_back(t);  // gate serializes: no mutex needed
      gate.Advance();
    });
    ASSERT_EQ(delivered.size(), 64u);
    for (size_t t = 0; t < 64; ++t) EXPECT_EQ(delivered[t], t);
  }
}

}  // namespace
}  // namespace demsort::par
