// External multiway selection (§IV-A / App. B): the splitter matrix must
// partition the disk-resident runs at exactly the ranks i*N/P, verified
// against a brute-force oracle over the full data.
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <tuple>
#include <vector>

#include "core/block_io.h"
#include "core/external_selection.h"
#include "core/run_formation.h"
#include "test_util.h"
#include "workload/generators.h"

namespace demsort::core {
namespace {

using workload::Distribution;

std::vector<KV16> ReadPiece(PeContext& ctx, const SortConfig& config,
                            const RunPiece<KV16>& piece) {
  size_t epb = config.ElementsPerBlock<KV16>();
  std::vector<size_t> counts(piece.blocks.size());
  uint64_t remaining = piece.size;
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = static_cast<size_t>(std::min<uint64_t>(epb, remaining));
    remaining -= counts[i];
  }
  return ReadBlocks<KV16>(ctx.bm, piece.blocks, counts);
}

class ExternalSelectionParamTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t, Distribution>> {
};

TEST_P(ExternalSelectionParamTest, SplittersPartitionExactly) {
  auto [P, elements_per_pe, dist] = GetParam();
  SortConfig config = test::SmallConfig();

  test::RunPes(P, config, [&](PeContext& ctx, const SortConfig& cfg) {
    auto gen = workload::GenerateKV16(ctx.bm, dist, elements_per_pe,
                                      ctx.rank(), P, cfg.seed);
    RunFormationResult<KV16> rf = FormRuns<KV16>(ctx, cfg, gen.input);

    ExternalSelector<KV16> selector(ctx, cfg, rf);
    SplitterMatrix split = selector.SelectAllCollective(nullptr);

    const size_t num_runs = rf.table.num_runs();
    ASSERT_EQ(split.boundary.size(), static_cast<size_t>(P + 1));

    // Row sums hit the exact target ranks; rows are monotone per run.
    uint64_t total = rf.total_elements;
    for (int t = 0; t <= P; ++t) {
      uint64_t sum = 0;
      for (size_t r = 0; r < num_runs; ++r) {
        sum += split.boundary[t][r];
        if (t > 0) {
          EXPECT_LE(split.boundary[t - 1][r], split.boundary[t][r]);
        }
      }
      uint64_t expect =
          t == P ? total : total / P * t + std::min<uint64_t>(total % P, t);
      EXPECT_EQ(sum, expect) << "row " << t;
    }

    // Oracle: gather all run data on every PE (test sizes are small), then
    // check the partition property per boundary: with the (key, run, pos)
    // total order, every element left of a split must precede every element
    // right of it.
    std::vector<std::vector<KV16>> full_runs(num_runs);
    for (size_t r = 0; r < num_runs; ++r) {
      std::vector<KV16> mine = ReadPiece(ctx, cfg, rf.runs.pieces[r]);
      auto parts = ctx.comm->AllgatherV(mine);
      for (auto& part : parts) {
        full_runs[r].insert(full_runs[r].end(), part.begin(), part.end());
      }
      ASSERT_EQ(full_runs[r].size(), rf.table.RunLength(r));
      ASSERT_TRUE(std::is_sorted(full_runs[r].begin(), full_runs[r].end(),
                                 test::KVLess()));
    }
    for (int t = 1; t < P; ++t) {
      // max over runs of (key at split-1, run) must precede min of
      // (key at split, run) in (key, run) order.
      std::pair<uint64_t, size_t> max_left{0, 0};
      std::pair<uint64_t, size_t> min_right{UINT64_MAX, SIZE_MAX};
      bool have_left = false, have_right = false;
      for (size_t r = 0; r < num_runs; ++r) {
        uint64_t s = split.boundary[t][r];
        if (s > 0) {
          std::pair<uint64_t, size_t> cand{full_runs[r][s - 1].key, r};
          if (!have_left || max_left < cand) max_left = cand;
          have_left = true;
        }
        if (s < full_runs[r].size()) {
          std::pair<uint64_t, size_t> cand{full_runs[r][s].key, r};
          if (!have_right || cand < min_right) min_right = cand;
          have_right = true;
        }
      }
      if (have_left && have_right) {
        EXPECT_LE(max_left.first, min_right.first) << "boundary " << t;
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExternalSelectionParamTest,
    ::testing::Combine(
        ::testing::Values(1, 2, 3, 5),
        ::testing::Values<uint64_t>(64, 777, 3000),
        ::testing::Values(Distribution::kUniform,
                          Distribution::kWorstCaseLocal,
                          Distribution::kAllEqual, Distribution::kZipf,
                          Distribution::kSortedGlobal)));

TEST(ExternalSelectionTest, SelectionIsCheapWithSamples) {
  // The sampled bootstrap should keep fetch rounds very low (the paper:
  // "multiway selection takes negligible time").
  const int P = 4;
  SortConfig config = test::SmallConfig();
  test::RunPes(P, config, [&](PeContext& ctx, const SortConfig& cfg) {
    auto gen = workload::GenerateKV16(ctx.bm, Distribution::kUniform, 4096,
                                      ctx.rank(), P, cfg.seed);
    auto rf = FormRuns<KV16>(ctx, cfg, gen.input);
    PhaseStats stats;
    ExternalSelector<KV16> selector(ctx, cfg, rf);
    selector.SelectAllCollective(&stats);
    EXPECT_LE(stats.selection_rounds, 24u);
  });
}

TEST(ExternalSelectionTest, RowGatherStaysAtStreamingBufferBound) {
  // The splitter-row replication goes through Comm::AllgatherVStream: row
  // chunks land directly in the matrix, so transport-side buffering stays
  // at the streaming bound of O(credits x chunk x sources) — NOT at the
  // P-vectors-of-rows the buffered AllgatherV used to stage. A geometry
  // with hundreds of runs makes the two regimes clearly distinguishable.
  const int P = 4;
  SortConfig config = test::SmallConfig();
  config.memory_per_pe = 2048;       // 128 KV16 per run piece => many runs
  config.stream_chunk_bytes = 128;   // far below one row
  config.stream_chunk_mode = net::StreamChunkMode::kFixed;
  const uint64_t elements_per_pe = 60000;

  test::RunPes(P, config, [&](PeContext& ctx, const SortConfig& cfg) {
    auto gen = workload::GenerateKV16(ctx.bm, Distribution::kUniform,
                                      elements_per_pe, ctx.rank(), P,
                                      cfg.seed);
    RunFormationResult<KV16> rf = FormRuns<KV16>(ctx, cfg, gen.input);
    const size_t num_runs = rf.table.num_runs();
    ASSERT_GE(num_runs, 100u) << "geometry no longer produces enough runs "
                                 "for the bound comparison to be meaningful";

    net::Comm& comm = *ctx.comm;
    ExternalSelector<KV16> selector(ctx, cfg, rf);
    const uint64_t total = rf.total_elements;
    const int me = comm.rank();
    uint64_t my_target =
        total / P * me + std::min<uint64_t>(total % P, me);
    std::vector<uint64_t> my_row = selector.SelectCollective(my_target,
                                                             nullptr);

    // Quiesce the fetch rounds, then measure the row gather in isolation.
    comm.Barrier();
    comm.ResetRecvBufferPeak();
    SplitterMatrix split = selector.GatherSplitterMatrix(my_row);
    uint64_t peak = comm.StatsSnapshot().recv_buffer_peak_bytes;

    const uint64_t row_bytes = num_runs * sizeof(uint64_t);
    const uint64_t streaming_bound =
        static_cast<uint64_t>(P - 1) *
        ((net::Comm::kStreamSendCreditChunks + 2) *
             (cfg.stream_chunk_bytes + sizeof(net::StreamChunkHeader)) +
         sizeof(net::StreamSizeHeader) + 8 * sizeof(net::StreamCreditMsg));
    ASSERT_LT(streaming_bound, static_cast<uint64_t>(P - 1) * row_bytes)
        << "bound comparison degenerate: grow the run count";
    EXPECT_LE(peak, streaming_bound);

    // And the matrix is still the right one: row sums hit the targets.
    for (int t = 0; t <= P; ++t) {
      uint64_t sum = 0;
      for (size_t r = 0; r < num_runs; ++r) sum += split.boundary[t][r];
      uint64_t expect =
          t == P ? total : total / P * t + std::min<uint64_t>(total % P, t);
      EXPECT_EQ(sum, expect) << "row " << t;
    }
  });
}

TEST(ExternalSelectionTest, TinyCacheStillCorrect) {
  const int P = 3;
  SortConfig config = test::SmallConfig();
  config.selection_cache_blocks = 1;  // pathological; must still converge
  test::RunPes(P, config, [&](PeContext& ctx, const SortConfig& cfg) {
    auto gen = workload::GenerateKV16(ctx.bm, Distribution::kZipf, 1024,
                                      ctx.rank(), P, cfg.seed);
    auto rf = FormRuns<KV16>(ctx, cfg, gen.input);
    ExternalSelector<KV16> selector(ctx, cfg, rf);
    SplitterMatrix split = selector.SelectAllCollective(nullptr);
    uint64_t total = rf.total_elements;
    for (int t = 0; t <= P; ++t) {
      uint64_t sum = 0;
      for (size_t r = 0; r < rf.table.num_runs(); ++r) {
        sum += split.boundary[t][r];
      }
      uint64_t expect =
          t == P ? total : total / P * t + std::min<uint64_t>(total % P, t);
      EXPECT_EQ(sum, expect);
    }
  });
}

}  // namespace
}  // namespace demsort::core
