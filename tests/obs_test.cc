// Observability layer: ring-buffer overflow semantics, wire round-trips,
// cross-rank trace gather producing lint-clean Chrome JSON, lossless
// concurrent metric updates, the per-phase gauge-reset contract (two
// consecutive phases must not leak peaks), straggler-report output, and a
// well-formed partial trace after a mid-sort PE kill.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/canonical_mergesort.h"
#include "core/pe_context.h"
#include "core/phase_stats.h"
#include "net/cluster.h"
#include "net/comm.h"
#include "net/fault_transport.h"
#include "obs/metrics.h"
#include "obs/straggler.h"
#include "obs/trace.h"
#include "obs/trace_check.h"
#include "obs/trace_gather.h"
#include "test_util.h"
#include "util/aligned_buffer.h"
#include "util/timer.h"
#include "workload/generators.h"

namespace demsort {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Resets the global tracer to a known state; tests share one process.
void ResetTracer() {
  obs::Tracer::Get().Disable();
  obs::Tracer::Get().Clear();
  obs::SetThreadRank(-1);
}

// ------------------------------------------------------- ring semantics ----

TEST(TraceRingTest, OverflowKeepsNewestAndCountsDrops) {
  obs::TraceRing ring;
  constexpr uint64_t kCap = obs::TraceRing::kCapacity;
  constexpr uint64_t kExtra = 100;
  for (uint64_t i = 0; i < kCap + kExtra; ++i) {
    obs::SpanEvent e;
    e.arg1 = i;
    ring.Push(e);
  }
  EXPECT_EQ(ring.head(), kCap + kExtra);
  EXPECT_EQ(ring.dropped(), kExtra);
  // The readable window [head - kCapacity, head) holds exactly the newest
  // kCapacity events; the oldest kExtra were overwritten in place.
  EXPECT_EQ(ring.at(ring.head() - kCap).arg1, kExtra);
  EXPECT_EQ(ring.at(ring.head() - 1).arg1, kCap + kExtra - 1);
  uint64_t mid = ring.head() - kCap / 2;
  EXPECT_EQ(ring.at(mid).arg1, mid);
  ring.Clear();
  EXPECT_EQ(ring.head(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
}

// --------------------------------------------------- wire serialization ----

TEST(TracerTest, SerializeDecodeRoundTripFiltersByRank) {
  ResetTracer();
  obs::Tracer& tracer = obs::Tracer::Get();
  tracer.Enable();
  tracer.MarkSessionStart();
  obs::SetThreadRank(7);
  obs::SetThreadName("obs-test");
  obs::EmitInstant("test", "tick", "v", 42);
  { obs::ScopedSpan span("test", "work", "iter", 1); }
  tracer.Disable();

  std::vector<uint8_t> blob = tracer.SerializeRank(7);
  obs::Tracer::WireTrace wire;
  ASSERT_TRUE(obs::Tracer::DecodeWire(blob, &wire));
  ASSERT_EQ(wire.events.size(), 3u);  // instant + B + E
  bool saw_tick = false, saw_work = false;
  for (const obs::Tracer::WireEvent& e : wire.events) {
    EXPECT_EQ(e.rank, 7);
    EXPECT_GE(e.ts_ns, 0) << "timestamps must be session-relative";
    const std::string& name = wire.strings.at(e.name);
    saw_tick = saw_tick || name == "tick";
    saw_work = saw_work || name == "work";
    if (name == "tick") EXPECT_EQ(e.arg1, 42u);
  }
  EXPECT_TRUE(saw_tick);
  EXPECT_TRUE(saw_work);

  // A different rank filter excludes everything this thread recorded.
  obs::Tracer::WireTrace other;
  ASSERT_TRUE(obs::Tracer::DecodeWire(tracer.SerializeRank(3), &other));
  EXPECT_TRUE(other.events.empty());

  // Truncated blobs must fail cleanly, not crash or half-decode.
  std::vector<uint8_t> cut(blob.begin(), blob.end() - 1);
  obs::Tracer::WireTrace bad;
  EXPECT_FALSE(obs::Tracer::DecodeWire(cut, &bad));
  ResetTracer();
}

// ------------------------------------------------------ cross-rank merge ----

TEST(TraceGatherTest, MergedJsonIsValidMonotonicAndCoversAllRanks) {
  ResetTracer();
  obs::Tracer& tracer = obs::Tracer::Get();
  tracer.Enable();
  tracer.MarkSessionStart();
  const std::string path = ::testing::TempDir() + "/obs_gather_trace.json";
  const int P = 4;
  net::Cluster::Run(P, [&](net::Comm& comm) {
    obs::SetThreadRank(comm.rank());
    obs::SetThreadName("pe");
    for (uint64_t i = 0; i < 5; ++i) {
      obs::ScopedSpan span("test", "work", "iter", i);
      obs::EmitInstant("test", "tick", "rank",
                       static_cast<uint64_t>(comm.rank()));
    }
    EXPECT_TRUE(obs::GatherTraceToRank0(comm, path));
  });

  obs::TraceLint lint;
  std::string text = ReadFileOrDie(path);
  ASSERT_TRUE(obs::LintChromeTrace(text, &lint)) << lint.err;
  EXPECT_TRUE(lint.monotonic) << "timestamps regress within a track";
  EXPECT_TRUE(lint.balanced) << "unbalanced B/E events";
  EXPECT_EQ(lint.pids, (std::set<int>{0, 1, 2, 3}))
      << "every rank must own a pid in the merged trace";
  // 5 spans (B+E) + 5 instants per rank.
  EXPECT_GE(lint.events, static_cast<size_t>(P) * 15);
  EXPECT_EQ(lint.names.count("work"), 1u);
  EXPECT_EQ(lint.names.count("tick"), 1u);
  ResetTracer();
}

// ----------------------------------------------------- metric registry -----

TEST(MetricRegistryTest, ConcurrentHistogramUpdatesAreLossless) {
  obs::Histogram& hist =
      obs::MetricRegistry::Global().GetHistogram("obs_test.concurrent");
  const uint64_t count0 = hist.Count();
  const uint64_t sum0 = hist.Sum();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        hist.Record(static_cast<uint64_t>(t) + 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  uint64_t want_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    want_sum += (static_cast<uint64_t>(t) + 1) * kPerThread;
  }
  EXPECT_EQ(hist.Count() - count0, kThreads * kPerThread);
  EXPECT_EQ(hist.Sum() - sum0, want_sum);
  // Same name must intern to the same instance.
  EXPECT_EQ(&hist,
            &obs::MetricRegistry::Global().GetHistogram("obs_test.concurrent"));
}

// ------------------------------------------------- gauge-reset contract ----

TEST(PhaseCollectorTest, ConsecutivePhasesDoNotLeakGaugePeaks) {
  core::SortConfig config = test::SmallConfig();
  test::RunPes(1, config, [&](core::PeContext& ctx, const core::SortConfig&) {
    core::PhaseCollector collector(ctx.comm, ctx.bm);

    // Phase 1: drive every per-phase gauge to a nonzero peak.
    collector.Begin(core::Phase::kRunFormation);
    ctx.comm->stats().SetStreamChunkBytes(4096);
    ctx.comm->stats().AddRecvBuffered(1 << 20);
    ctx.comm->stats().SubRecvBuffered(1 << 20);
    io::BlockId block = ctx.bm->Allocate();
    AlignedBuffer buf(ctx.bm->block_size());
    std::memset(buf.data(), 0xab, buf.size());
    ctx.bm->WriteSync(block, buf.data());
    collector.End(core::Phase::kRunFormation);

    const core::PhaseStats& p1 = collector.stats(core::Phase::kRunFormation);
    EXPECT_EQ(p1.net.stream_chunk_bytes, 4096u);
    EXPECT_EQ(p1.net.recv_buffer_peak_bytes, uint64_t{1} << 20);
    EXPECT_GE(p1.io.queue_depth_peak, 1u);

    // Phase 2: no traffic, no I/O. Every gauge must read zero — a peak
    // carried over from phase 1 is exactly the leak this guards against.
    collector.Begin(core::Phase::kMultiwaySelection);
    collector.End(core::Phase::kMultiwaySelection);

    const core::PhaseStats& p2 =
        collector.stats(core::Phase::kMultiwaySelection);
    EXPECT_EQ(p2.net.stream_chunk_bytes, 0u);
    EXPECT_EQ(p2.net.recv_buffer_peak_bytes, 0u);
    EXPECT_EQ(p2.io.queue_depth_peak, 0u);

    ctx.bm->Free(block);
  });
}

// ----------------------------------------------------- straggler report ----

TEST(StragglerTest, StatsJsonAndTableCoverEveryPhaseAndRank) {
  const int P = 2;
  std::vector<core::SortReport> reports(P);
  for (int r = 0; r < P; ++r) {
    reports[r].rank = r;
    reports[r].num_pes = P;
    reports[r].local_input_elements = 1000;
    reports[r].local_output_elements = 1000;
    for (int p = 0; p < static_cast<int>(core::Phase::kNumPhases); ++p) {
      core::PhaseStats& s = reports[r].phase[p];
      s.wall_s = 1.0 + r + 0.1 * p;  // rank 1 is the straggler everywhere
      s.io.reads = 10 * (r + 1);
      s.io.bytes_read = 1024 * (r + 1);
      s.net.bytes_sent = 512 * (r + 1);
    }
  }

  std::string table = obs::FormatStragglerTable(reports);
  for (int p = 0; p < static_cast<int>(core::Phase::kNumPhases); ++p) {
    EXPECT_NE(table.find(core::PhaseName(static_cast<core::Phase>(p))),
              std::string::npos)
        << "phase " << p << " missing from table:\n"
        << table;
  }

  const std::string path = ::testing::TempDir() + "/obs_stats.json";
  ASSERT_TRUE(obs::WriteStatsJson(path, reports, /*emulation_wall_s=*/3.5));
  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::ParseJson(ReadFileOrDie(path), &doc, &err)) << err;
  const obs::JsonValue* schema = doc.Find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->str, "demsort-stats-v1");
  const obs::JsonValue* pes = doc.Find("pes");
  ASSERT_NE(pes, nullptr);
  EXPECT_EQ(static_cast<int>(pes->number), P);
  const obs::JsonValue* phases = doc.Find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_EQ(phases->arr.size(),
            static_cast<size_t>(core::Phase::kNumPhases));
  for (const obs::JsonValue& phase : phases->arr) {
    const obs::JsonValue* wall = phase.Find("wall_s");
    ASSERT_NE(wall, nullptr);
    const obs::JsonValue* per_rank = wall->Find("per_rank");
    ASSERT_NE(per_rank, nullptr);
    EXPECT_EQ(per_rank->arr.size(), static_cast<size_t>(P));
    const obs::JsonValue* slowest = wall->Find("slowest_rank");
    ASSERT_NE(slowest, nullptr);
    EXPECT_EQ(static_cast<int>(slowest->number), 1);
  }
  EXPECT_NE(doc.Find("total"), nullptr);
}

// ------------------------------------------------ partial trace on kill ----

TEST(TraceFaultTest, KillMidSortYieldsWellFormedPartialTrace) {
  ResetTracer();
  obs::Tracer& tracer = obs::Tracer::Get();
  tracer.Enable();
  tracer.MarkSessionStart();

  const int P = 4;
  core::SortConfig config;
  config.block_size = 4 * 1024;
  config.memory_per_pe = 64 * 1024;
  config.disks_per_pe = 2;
  config.threads_per_pe = 1;
  config.async_io = false;  // unwinding must not race in-flight disk I/O
  config.seed = 7;

  net::FaultInjector::Spec spec;
  spec.victim_pe = 1;
  spec.fail_at_op = 20;  // dies during run formation's sampling exchange
  auto injector = std::make_shared<net::FaultInjector>(spec);
  net::Fabric fabric(P);
  net::FaultTransport fault(&fabric, injector);

  std::atomic<int> comm_errors{0};
  std::vector<std::thread> threads;
  threads.reserve(P);
  for (int pe = 0; pe < P; ++pe) {
    threads.emplace_back([&, pe] {
      try {
        net::Comm comm(pe, P, &fault);
        obs::SetThreadRank(pe);
        obs::SetThreadName("pe");
        obs::EmitInstant("test", "pe.start");
        core::PeResources resources(&comm, config);
        core::PeContext& ctx = resources.ctx();
        auto gen = workload::GenerateKV16(
            ctx.bm, workload::Distribution::kUniform,
            /*elements_per_pe=*/4096, pe, P, config.seed);
        core::CanonicalMergeSort<core::KV16>(ctx, config, gen.input);
      } catch (const net::CommError& e) {
        ++comm_errors;
        fault.KillPe(pe, e.status());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_GT(comm_errors.load(), 0) << "fault did not fire mid-sort";

  // The cross-rank gather is impossible now; the local writer must still
  // produce a lint-clean trace (unclosed phase spans repaired at export).
  const std::string path = ::testing::TempDir() + "/obs_partial_trace.json";
  ASSERT_TRUE(obs::WriteLocalTrace(path));
  obs::TraceLint lint;
  std::string text = ReadFileOrDie(path);
  ASSERT_TRUE(obs::LintChromeTrace(text, &lint)) << lint.err;
  EXPECT_TRUE(lint.balanced)
      << "killed run left unbalanced B/E events in the export";
  EXPECT_TRUE(lint.monotonic);
  EXPECT_GE(lint.events, static_cast<size_t>(P));  // the pe.start instants
  EXPECT_EQ(lint.names.count("pe.start"), 1u);
#if DEMSORT_TRACING
  // Instrumented builds record phase spans before the kill lands.
  EXPECT_EQ(lint.names.count("run_formation"), 1u);
#endif
  ResetTracer();
}

}  // namespace
}  // namespace demsort
