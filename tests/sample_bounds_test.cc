// Property tests for the sample-bounds primitive both selection flavours
// build on: for arbitrary sorted sequences, sample rates and target ranks,
// SampleBootstrapBounds must return windows that (a) contain the exact
// split positions and (b) are O(sample gap) wide.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <tuple>
#include <vector>

#include "core/record.h"
#include "core/sample_bounds.h"
#include "par/multiway_select.h"
#include "util/random.h"

namespace demsort::core {
namespace {

using KVLess = RecordTraits<KV16>::Less;
using Entry = SampleTable<KV16>::Entry;

struct Family {
  std::vector<std::vector<KV16>> seqs;
  std::vector<std::vector<Entry>> samples;
  std::vector<uint64_t> lengths;
  uint64_t total = 0;
};

Family MakeFamily(size_t k, size_t max_len, uint64_t key_range,
                  uint64_t sample_k, uint64_t seed) {
  Family f;
  Rng rng(seed);
  f.seqs.resize(k);
  f.samples.resize(k);
  for (size_t j = 0; j < k; ++j) {
    f.seqs[j].resize(rng.Below(max_len + 1));
    for (auto& r : f.seqs[j]) r = {rng.Below(key_range), rng.Next()};
    std::sort(f.seqs[j].begin(), f.seqs[j].end(), KVLess());
    uint64_t len = f.seqs[j].size();
    for (uint64_t pos = 0; pos < len; pos += sample_k) {
      f.samples[j].push_back(Entry{f.seqs[j][pos], pos});
    }
    if (len > 0 && (len - 1) % sample_k != 0) {
      f.samples[j].push_back(Entry{f.seqs[j][len - 1], len - 1});
    }
    f.lengths.push_back(f.seqs[j].size());
    f.total += f.seqs[j].size();
  }
  return f;
}

class SampleBoundsParamTest
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t, uint64_t>> {
};

TEST_P(SampleBoundsParamTest, BoundsContainExactPositionsAndAreTight) {
  auto [k, key_range, sample_k] = GetParam();
  KVLess less;
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Family f = MakeFamily(k, 600, key_range, sample_k, seed * 77 + k);
    std::vector<std::span<const KV16>> spans;
    for (auto& s : f.seqs) spans.emplace_back(s.data(), s.size());

    for (uint64_t target :
         {uint64_t{0}, f.total / 3, f.total / 2, f.total - f.total / 5,
          f.total}) {
      std::vector<size_t> exact =
          par::MultiwaySelect<KV16, KVLess>(spans, target, less);
      std::vector<uint64_t> lo, hi;
      SampleBootstrapBounds<KV16, KVLess>(f.samples, f.lengths, target, less,
                                          &lo, &hi);
      uint64_t window_total = 0;
      for (size_t j = 0; j < k; ++j) {
        EXPECT_LE(lo[j], exact[j]) << "seq " << j << " target " << target;
        EXPECT_GE(hi[j], exact[j]) << "seq " << j << " target " << target;
        window_total += hi[j] - lo[j];
      }
      // Tightness: O(k * gap) for low-duplication keys. (With heavy
      // duplication the sample-unresolvable boundary mass is input
      // dependent; containment above is the contract consumers rely on —
      // wider windows only mean more fetched data.)
      if (key_range > 1000) {
        EXPECT_LE(window_total, 6 * k * sample_k + 4 * k)
            << "target " << target;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SampleBoundsParamTest,
    ::testing::Combine(::testing::Values<size_t>(1, 2, 4, 8),
                       ::testing::Values<uint64_t>(3, 50, 1u << 30),
                       ::testing::Values<uint64_t>(1, 8, 64)));

TEST(SampleBoundsTest, AllEqualKeysStillNarrow) {
  // Duplicate-heavy sequences: the (key, sequence) tie order must keep the
  // windows at sample-gap width, not collapse to "anything goes".
  KVLess less;
  Family f;
  f.seqs.resize(3);
  f.samples.resize(3);
  for (size_t j = 0; j < 3; ++j) {
    f.seqs[j].assign(256, KV16{7, j});
    for (uint64_t pos = 0; pos < 256; pos += 16) {
      f.samples[j].push_back(Entry{f.seqs[j][pos], pos});
    }
    // Closing sample, as the library's samplers produce.
    f.samples[j].push_back(Entry{f.seqs[j][255], 255});
    f.lengths.push_back(256);
  }
  std::vector<uint64_t> lo, hi;
  SampleBootstrapBounds<KV16, KVLess>(f.samples, f.lengths, 384, less, &lo,
                                      &hi);
  // Exact positions for rank 384 in (key, seq, pos) order: 256 + 128 + 0.
  EXPECT_LE(lo[0], 256u);
  EXPECT_GE(hi[0], 256u);
  EXPECT_LE(lo[1], 128u);
  EXPECT_GE(hi[1], 128u);
  EXPECT_LE(lo[2], 0u);
  uint64_t window = 0;
  for (int j = 0; j < 3; ++j) window += hi[j] - lo[j];
  EXPECT_LE(window, 3 * 2 * 16 + 6);
}

TEST(SampleBoundsTest, EmptySequences) {
  KVLess less;
  std::vector<std::vector<Entry>> samples(3);
  std::vector<uint64_t> lengths = {0, 0, 0};
  std::vector<uint64_t> lo, hi;
  SampleBootstrapBounds<KV16, KVLess>(samples, lengths, 0, less, &lo, &hi);
  for (int j = 0; j < 3; ++j) {
    EXPECT_EQ(lo[j], 0u);
    EXPECT_EQ(hi[j], 0u);
  }
}

TEST(SampleBoundsTest, SingleElementSequences) {
  KVLess less;
  std::vector<std::vector<Entry>> samples(2);
  std::vector<uint64_t> lengths = {1, 1};
  samples[0].push_back(Entry{KV16{10, 0}, 0});
  samples[1].push_back(Entry{KV16{20, 1}, 0});
  for (uint64_t target = 0; target <= 2; ++target) {
    std::vector<uint64_t> lo, hi;
    SampleBootstrapBounds<KV16, KVLess>(samples, lengths, target, less, &lo,
                                        &hi);
    // Exact positions: target 0 -> (0,0); 1 -> (1,0); 2 -> (1,1).
    uint64_t p0 = target >= 1 ? 1 : 0;
    uint64_t p1 = target >= 2 ? 1 : 0;
    EXPECT_LE(lo[0], p0);
    EXPECT_GE(hi[0], p0);
    EXPECT_LE(lo[1], p1);
    EXPECT_GE(hi[1], p1);
  }
}

TEST(PrecedesInTieOrderTest, KeyThenSequence) {
  KVLess less;
  KV16 small{1, 0}, big{2, 0};
  EXPECT_TRUE((PrecedesInTieOrder<KV16, KVLess>(small, 5, big, 1, less)));
  EXPECT_FALSE((PrecedesInTieOrder<KV16, KVLess>(big, 0, small, 9, less)));
  // Equal keys: sequence index decides.
  EXPECT_TRUE((PrecedesInTieOrder<KV16, KVLess>(small, 1, small, 2, less)));
  EXPECT_FALSE((PrecedesInTieOrder<KV16, KVLess>(small, 2, small, 1, less)));
}

}  // namespace
}  // namespace demsort::core
