// Figure 4 reproduction: running times for WORST-CASE input (identical
// locally sorted key distribution on every PE) WITH block randomization,
// P = 1..64.
//
// Paper shape: close to Fig. 2 (random input) — randomization makes every
// run resemble the global distribution, so the all-to-all stays small; the
// residual movement is the O(R*sqrt(M*B)*logP) term of Appendix C.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace demsort;
  FlagParser flags(argc, argv);
  uint64_t elements_per_pe = static_cast<uint64_t>(
      flags.GetInt("elements-per-pe", (2 << 20) / 16));
  core::SortConfig config = bench::FigureConfig(
      static_cast<size_t>(flags.GetInt("block-size", 4 * 1024)));
  config.randomize_blocks = true;

  sim::CostModel model;
  std::printf(
      "# Fig. 4 — CANONICALMERGESORT, worst-case input, WITH "
      "randomization\n"
      "# %llu elements/PE, B=%zu, m=%zu B, D=%u\n",
      static_cast<unsigned long long>(elements_per_pe), config.block_size,
      config.memory_per_pe, config.disks_per_pe);
  bench::PrintPhaseHeader();
  for (int p : bench::PeSweep(flags)) {
    bench::SortRunResult run = bench::RunCanonical(
        p, workload::Distribution::kWorstCaseLocal, config,
        elements_per_pe);
    bench::PrintPhaseRow(p, run, model);
    std::fflush(stdout);
  }
  return 0;
}
