// SortBenchmark table reproduction (§VI): 100-byte records with 10-byte
// keys, the setting of the paper's Indy GraySort / MinuteSort entries
// (564 GB/min on 195 nodes; 3.6x the previous MinuteSort record; ~3x faster
// than TokuSampleSort on a Terabyte with a third of the disks).
//
// We report modeled throughput (GB/min of sorted data, using the measured
// volumes + the paper's hardware constants) for three sorters:
//   canonical  — CANONICALMERGESORT (this paper)
//   striped    — GLOBALSTRIPEDMERGESORT (§III; more communication)
//   nowsort    — NOW-Sort-style sampling baseline [5]
// on uniform and skewed (duplicate-heavy) record keys. Shape to reproduce:
// canonical >= striped everywhere (communication gap), both stable under
// skew; nowsort competitive on uniform keys but collapsing under skew
// (imbalance column).
#include <cstdio>
#include <mutex>

#include "baseline/nowsort.h"
#include "bench_util.h"
#include "core/striped_mergesort.h"

namespace {

using namespace demsort;

struct Row {
  double modeled_s = 0;
  double gb_per_min = 0;
  double imbalance = 1.0;
  bool valid = false;
};

Row RunOne(const char* algo, int num_pes, uint64_t records_per_pe,
           bool skewed, const core::SortConfig& config) {
  Row row;
  std::vector<core::SortReport> reports(num_pes);
  std::mutex mu;
  bool all_valid = true;
  double imbalance = 1.0;
  net::Cluster::Run(num_pes, [&](net::Comm& comm) {
    core::PeResources resources(&comm, config);
    core::PeContext& ctx = resources.ctx();
    auto gen = workload::GenerateGray100(ctx.bm, records_per_pe, comm.rank(),
                                         num_pes, config.seed, skewed);
    workload::ValidationResult v;
    core::SortReport report;
    double imb = 1.0;
    if (std::string(algo) == "canonical") {
      auto out = core::CanonicalMergeSort<core::Gray100>(ctx, config,
                                                         gen.input);
      v = workload::ValidateCollective<core::Gray100>(
          ctx, out.blocks, out.num_elements, gen.checksum);
      report = out.report;
    } else if (std::string(algo) == "striped") {
      auto out = core::StripedMergeSort<core::Gray100>(ctx, config,
                                                       gen.input);
      v = workload::ValidateStripedCollective<core::Gray100>(
          ctx, out.stream.my_blocks, out.stream.total_elements,
          gen.checksum);
      report = out.report;
    } else {
      auto out = baseline::NowSort<core::Gray100>(ctx, config, gen.input);
      v = workload::ValidateCollective<core::Gray100>(
          ctx, out.blocks, out.num_elements, gen.checksum,
          /*require_exact_partition=*/false);
      report = out.report;
      imb = out.imbalance;
    }
    std::lock_guard<std::mutex> lock(mu);
    reports[comm.rank()] = report;
    if (!v.ok()) all_valid = false;
    imbalance = std::max(imbalance, imb);
  });

  sim::CostModel model;
  static const bool kVerbose = getenv("DEMSORT_PHASES") != nullptr;
  if (kVerbose) {
    for (int ph = 0; ph < 4; ++ph) {
      sim::PhaseTime t = model.ClusterPhaseSeconds(
          static_cast<core::Phase>(ph), reports);
      std::fprintf(stderr, "  %-10s %-20s io=%.4f comm=%.4f cpu=%.4f total=%.4f\n",
                   algo, core::PhaseName(static_cast<core::Phase>(ph)),
                   t.io_s, t.comm_s, t.cpu_s, t.total_s);
    }
  }
  row.modeled_s = model.TotalSeconds(reports);
  // NOW-Sort's straggler bound: scale by partition imbalance (its merge
  // phase is gated by the largest partition).
  if (std::string(algo) == "nowsort") row.modeled_s *= imbalance;
  double gb =
      static_cast<double>(num_pes) * records_per_pe * 100.0 / 1e9;
  row.gb_per_min = gb / row.modeled_s * 60.0;
  row.imbalance = imbalance;
  row.valid = all_valid;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  // Default to 32 PEs: the fabric-contention knee where the striped
  // algorithm's extra communication starts to bite (the paper's machine
  // showed the same effect as more nodes loaded the InfiniBand fabric).
  int num_pes = static_cast<int>(flags.GetInt("pes", 32));
  uint64_t records_per_pe =
      static_cast<uint64_t>(flags.GetInt("records-per-pe", 20000));

  core::SortConfig config = bench::FigureConfig(4 * 1024);
  // 100-byte records: keep the same geometry ratios.
  config.memory_per_pe = 512 * 1024;

  std::printf(
      "# SortBenchmark-style comparison (Indy rules: 100-byte records, "
      "10-byte keys)\n"
      "# P=%d, %llu records/PE (%.2f GB total), modeled on the paper's "
      "testbed constants\n"
      "# paper reference points: DEMSort GraySort 564 GB/min on 195 nodes; "
      "MinuteSort 955 GB\n",
      num_pes, static_cast<unsigned long long>(records_per_pe),
      static_cast<double>(num_pes) * records_per_pe * 100.0 / 1e9);
  std::printf("%-10s  %-8s  %10s  %12s  %10s  %6s\n", "algorithm", "keys",
              "modeled_s", "GB_per_min", "imbalance", "valid");
  for (const char* algo : {"canonical", "striped", "nowsort"}) {
    for (bool skewed : {false, true}) {
      Row row = RunOne(algo, num_pes, records_per_pe, skewed, config);
      std::printf("%-10s  %-8s  %10.3f  %12.2f  %10.2f  %6s\n", algo,
                  skewed ? "skewed" : "uniform", row.modeled_s,
                  row.gb_per_min, row.imbalance, row.valid ? "yes" : "NO");
      std::fflush(stdout);
    }
  }
  return 0;
}
