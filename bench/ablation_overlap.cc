// Ablation: §IV-E overlapping of I/O with computation/communication during
// run formation, crossed with the storage engine's submission mode.
//
// Two axes:
//   io      = sync (every block waits at the seam, queue depth pinned to 1)
//             vs async (the VirtualDisk pump keeps the backend's queue fed)
//   overlap = pipelined run formation (reads of run r+1 and writes of run
//             r-1 proceed while run r is cooperatively sorted) vs serialized
//
// On the default memory backend the disks are throttled to their modeled
// service time (real sleeps) so the overlap shows up in wall clock. With
// --storage={file,direct,uring,mmap} the blocks hit real files and the
// throttle is dropped: async-vs-sync then measures actual latency hiding at
// queue depth > 1, reported by the ioq_peak gauge.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace demsort;
  FlagParser flags(argc, argv);
  int num_pes = static_cast<int>(flags.GetInt("pes", 4));
  uint64_t elements_per_pe = static_cast<uint64_t>(
      flags.GetInt("elements-per-pe", (2 << 20) / 16));
  int repeats = static_cast<int>(flags.GetInt("repeats", 3));

  core::SortConfig base = bench::FigureConfig();
  if (!bench::ApplyStorageFlags(flags, &base)) return 0;
  bool file_backed = io::IsFileBacked(base.backend);
  // Real backends supply real latency; the modeled throttle would only
  // double-charge the emulated disks.
  base.disk_model.throttle = !file_backed;

  std::printf(
      "# Ablation — run-formation overlap x I/O submission mode, "
      "storage=%s, qd=%zu, P=%d, min of %d reps\n",
      io::BackendKindName(base.backend), base.io_queue_depth, num_pes,
      repeats);
  std::printf("%-6s  %-9s  %18s  %14s  %8s\n", "io", "overlap",
              "run_form_wall_ms", "total_wall_ms", "ioq_peak");
  for (bool async : {false, true}) {
    for (bool overlap : {true, false}) {
      double best_rf_ms = 1e18;
      double best_total_ms = 1e18;
      uint64_t ioq_peak = 0;
      bool valid = true;
      for (int rep = 0; rep < repeats; ++rep) {
        core::SortConfig config = base;
        config.async_io = async;
        config.overlap_run_formation = overlap;
        bench::SortRunResult run = bench::RunCanonical(
            num_pes, workload::Distribution::kUniform, config,
            elements_per_pe);
        double rf_ms = 0;
        uint64_t peak = 0;
        for (const auto& r : run.reports) {
          const auto& s = r.Get(core::Phase::kRunFormation);
          rf_ms = std::max(rf_ms, s.wall_s * 1e3);
          peak = std::max(peak, s.io.queue_depth_peak);
        }
        best_rf_ms = std::min(best_rf_ms, rf_ms);
        best_total_ms = std::min(best_total_ms, run.wall_ms);
        ioq_peak = std::max(ioq_peak, peak);
        valid = valid && run.valid;
      }
      std::printf("%-6s  %-9s  %18.1f  %14.1f  %8llu%s\n",
                  async ? "async" : "sync", overlap ? "on" : "off",
                  best_rf_ms, best_total_ms,
                  static_cast<unsigned long long>(ioq_peak),
                  valid ? "" : "  INVALID");
      std::fflush(stdout);
    }
  }
  return 0;
}
