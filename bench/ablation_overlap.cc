// Ablation: §IV-E overlapping of I/O with computation/communication during
// run formation. Disks are throttled to their modeled service time (real
// sleeps), so the overlap is observable in actual wall clock: with overlap
// the reads of run r+1 and the writes of run r-1 proceed while run r is
// cooperatively sorted; without it, the phases serialize.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace demsort;
  FlagParser flags(argc, argv);
  int num_pes = static_cast<int>(flags.GetInt("pes", 4));
  uint64_t elements_per_pe = static_cast<uint64_t>(
      flags.GetInt("elements-per-pe", (2 << 20) / 16));

  int repeats = static_cast<int>(flags.GetInt("repeats", 3));
  std::printf(
      "# Ablation — run-formation overlap (throttled disks, async I/O), "
      "P=%d, min of %d reps\n",
      num_pes, repeats);
  std::printf("%-9s  %18s  %14s\n", "overlap", "run_form_wall_ms",
              "total_wall_ms");
  for (bool overlap : {true, false}) {
    double best_rf_ms = 1e18;
    double best_total_ms = 1e18;
    bool valid = true;
    for (int rep = 0; rep < repeats; ++rep) {
      core::SortConfig config = bench::FigureConfig();
      config.async_io = true;
      config.disk_model.throttle = true;
      config.overlap_run_formation = overlap;
      bench::SortRunResult run = bench::RunCanonical(
          num_pes, workload::Distribution::kUniform, config,
          elements_per_pe);
      double rf_ms = 0;
      for (const auto& r : run.reports) {
        rf_ms = std::max(rf_ms,
                         r.Get(core::Phase::kRunFormation).wall_s * 1e3);
      }
      best_rf_ms = std::min(best_rf_ms, rf_ms);
      best_total_ms = std::min(best_total_ms, run.wall_ms);
      valid = valid && run.valid;
    }
    std::printf("%-9s  %18.1f  %14.1f%s\n", overlap ? "on" : "off",
                best_rf_ms, best_total_ms, valid ? "" : "  INVALID");
    std::fflush(stdout);
  }
  return 0;
}
