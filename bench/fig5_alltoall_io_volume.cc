// Figure 5 reproduction: I/O volume of the all-to-all phase divided by the
// total data volume N, for P = 1..64 and four input/config combinations:
//   (a) worst-case input, non-randomized          — paper: ~up to several N
//   (b) worst-case input, randomized, B = default — paper: B = 8 MiB
//   (c) worst-case input, randomized, B = 1/4th   — paper: B = 2 MiB
//   (d) random input, randomized, B = default     — paper: ~1e-3..1e-2
//
// Paper shape: (a) >> (b) > (c) >> (d); the randomized series shrink with
// the sqrt(B) dependence of Appendix C (the reorganization overhead grows
// with the square root of the block size).
#include <cstdio>

#include "bench_util.h"

namespace {

double AllToAllIoOverN(const demsort::bench::SortRunResult& run) {
  uint64_t bytes = 0;
  for (const auto& report : run.reports) {
    bytes += report.Get(demsort::core::Phase::kAllToAll).io.bytes();
  }
  double n_bytes =
      static_cast<double>(run.total_elements) * sizeof(demsort::core::KV16);
  return static_cast<double>(bytes) / n_bytes;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace demsort;
  using workload::Distribution;
  FlagParser flags(argc, argv);
  uint64_t elements_per_pe = static_cast<uint64_t>(
      flags.GetInt("elements-per-pe", (2 << 20) / 16));
  size_t block_default =
      static_cast<size_t>(flags.GetInt("block-size", 4 * 1024));
  size_t block_small = block_default / 4;  // the paper's 8 MiB vs 2 MiB
  // --transport=tcp runs every sweep point over real loopback sockets;
  // --channel-cap=<size> bounds the in-process fabric's per-channel
  // buffering (I/O volumes must be identical either way — the figure is
  // about the algorithm, the substrate only moves the bytes).
  // --stream-chunk=<size> sets the streamed exchange's chunk (0 = the
  // 256 KiB default): smaller chunks shrink receive-side buffering of the
  // all-to-all at a higher per-message overhead, I/O volume unchanged.
  bench::RunOptions run_options = bench::RunOptionsFromFlags(flags);
  int64_t stream_chunk = ParseSize(flags.GetString("stream-chunk", "0"));
  if (stream_chunk < 0) {
    std::fprintf(stderr, "--stream-chunk must be >= 0\n");
    return 2;
  }

  struct Series {
    const char* name;
    Distribution dist;
    bool randomize;
    size_t block;
  };
  const Series series[] = {
      {"worst_nonrand_Bdef", Distribution::kWorstCaseLocal, false,
       block_default},
      {"worst_rand_Bdef", Distribution::kWorstCaseLocal, true, block_default},
      {"worst_rand_Bsmall", Distribution::kWorstCaseLocal, true, block_small},
      {"random_rand_Bdef", Distribution::kUniform, true, block_default},
  };

  std::printf(
      "# Fig. 5 — all-to-all I/O volume / N (paper plots this log-scale)\n"
      "# B_default=%zu B, B_small=%zu B, %llu elements/PE\n",
      block_default, block_small,
      static_cast<unsigned long long>(elements_per_pe));
  std::printf("%4s", "P");
  for (const Series& s : series) std::printf("  %18s", s.name);
  std::printf("\n");

  for (int p : bench::PeSweep(flags)) {
    std::printf("%4d", p);
    for (const Series& s : series) {
      core::SortConfig config = bench::FigureConfig(s.block);
      config.randomize_blocks = s.randomize;
      config.stream_chunk_bytes = static_cast<size_t>(stream_chunk);
      bench::SortRunResult run =
          bench::RunCanonical(p, s.dist, config, elements_per_pe,
                              run_options);
      std::printf("  %18.5f", run.valid ? AllToAllIoOverN(run) : -1.0);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
