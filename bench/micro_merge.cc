// Microbenchmarks of the shared-memory substrate (the MCSTL role): loser
// tree k-way merging, exact multiway selection, and in-memory sorting.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <span>
#include <vector>

#include "core/record.h"
#include "par/multiway_merge.h"
#include "par/multiway_select.h"
#include "par/parallel_sort.h"
#include "par/thread_pool.h"
#include "util/random.h"

namespace {

using demsort::Rng;
using demsort::core::KV16;
using KVLess = demsort::core::RecordTraits<KV16>::Less;

std::vector<std::vector<KV16>> MakeRuns(size_t k, size_t len, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<KV16>> runs(k);
  for (auto& run : runs) {
    run.resize(len);
    for (auto& r : run) r = {rng.Next(), rng.Next()};
    std::sort(run.begin(), run.end(), KVLess());
  }
  return runs;
}

void BM_MultiwayMerge(benchmark::State& state) {
  size_t k = state.range(0);
  size_t len = 1 << 16;
  auto runs = MakeRuns(k, len, 42);
  std::vector<std::span<const KV16>> spans;
  for (auto& r : runs) spans.emplace_back(r.data(), r.size());
  std::vector<KV16> out(k * len);
  for (auto _ : state) {
    demsort::par::MultiwayMerge<KV16, KVLess>(spans, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * k * len);
}
BENCHMARK(BM_MultiwayMerge)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(64)->Iterations(5);

void BM_MultiwaySelect(benchmark::State& state) {
  size_t k = state.range(0);
  size_t len = 1 << 18;
  auto runs = MakeRuns(k, len, 7);
  std::vector<std::span<const KV16>> spans;
  for (auto& r : runs) spans.emplace_back(r.data(), r.size());
  uint64_t rank = k * len / 2;
  for (auto _ : state) {
    auto positions =
        demsort::par::MultiwaySelect<KV16, KVLess>(spans, rank);
    benchmark::DoNotOptimize(positions.data());
  }
}
BENCHMARK(BM_MultiwaySelect)->Arg(2)->Arg(8)->Arg(32)->Iterations(2000);

void BM_ParallelSort(benchmark::State& state) {
  size_t threads = state.range(0);
  size_t n = 1 << 19;
  demsort::par::ThreadPool pool(threads);
  Rng rng(3);
  std::vector<KV16> data(n);
  for (auto _ : state) {
    state.PauseTiming();
    for (auto& r : data) r = {rng.Next(), rng.Next()};
    state.ResumeTiming();
    demsort::par::ParallelSort<KV16, KVLess>(pool, std::span<KV16>(data));
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelSort)->Arg(1)->Arg(2)->Arg(4)->Iterations(5);

void BM_LoserTreeReplay(benchmark::State& state) {
  size_t k = state.range(0);
  demsort::par::LoserTree<KV16, KVLess> tree(k);
  Rng rng(11);
  for (size_t s = 0; s < k; ++s) tree.InitSource(s, {rng.Next(), 0});
  tree.Build();
  for (auto _ : state) {
    tree.ReplaceWinner({rng.Next(), 0});
    benchmark::DoNotOptimize(tree.WinnerSource());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LoserTreeReplay)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Iterations(2000000);

}  // namespace
