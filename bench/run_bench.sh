#!/usr/bin/env bash
# Reproducible perf snapshot: runs the streaming-collective comparison
# (micro_net --credit-compare), the flat-vs-hierarchical topology sweep
# (micro_net --topo-compare, P=8 at 2 PEs/node — since the zero-copy
# leader path this also gates two-level wall <= 1.25x flat and intra-node
# bytes < 2x flat), the fig5 all-to-all I/O-volume sweep at fixed
# seeds/sizes, and — since the async storage engine — the overlap and
# prefetch ablations swept across storage backends and queue depths. Emits
# one machine-readable BENCH_PR9.json — the file future PRs diff to see
# the perf trajectory.
#
# Since the parallel merge engine it also sweeps the final-merge ablation
# (batched vs record-at-a-time kernels crossed with 1/2/4 merge workers,
# per storage backend).
#
# Since the observability layer it also snapshots a straggler report: a
# P=4 hierarchical sort run with --stats-json, written alongside the bench
# JSON as OUT.stats.json, so per-rank per-phase wall/IO/net distributions
# ride the same perf trajectory as the counters.
#
# Usage: bench/run_bench.sh [BUILD_DIR] [OUT_JSON]
#   BUILD_DIR  cmake build directory holding the benches (default: build)
#   OUT_JSON   output path (default: BENCH_PR9.json in the repo root)
#
# Everything here is deterministic up to wall-clock timings: the workload
# seeds are fixed (FigureConfig's default seed), the sweep sizes are pinned
# below, and message/volume/connection/queue-depth counters are exact —
# compare those, not seconds. Storage backends the host cannot serve
# (O_DIRECT on tmpfs, io_uring behind seccomp or compiled out) are
# recorded as skipped rows, not failures.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_PR9.json}"

for bin in micro_net fig5_alltoall_io_volume ablation_overlap ablation_prefetch ablation_merge sortbench_cli trace_lint; do
  if [[ ! -x "$BUILD_DIR/$bin" ]]; then
    echo "error: $BUILD_DIR/$bin not built" >&2
    exit 2
  fi
done

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

# 1. Streaming credit/chunk comparison (also the pass/fail smoke).
"$BUILD_DIR/micro_net" --credit-compare --snapshot="$tmpdir/stream.json"

# 1b. Flat vs hierarchical schedules over the same 2-PEs/node machine
#     (also the pass/fail smoke: fewer uplink messages, N*(N-1) links,
#     two-level wall <= 1.25x flat, intra-node bytes < 2x flat).
"$BUILD_DIR/micro_net" --topo-compare --snapshot="$tmpdir/topo.json"

# 2. Fig. 5 all-to-all I/O volume at fixed sizes: P = 1..8 at the default
#    131072 elements/PE — large enough that the a2a phase actually hits
#    disk (tiny inputs take the in-place fast path and report all-zero
#    columns, which would carry no trajectory signal). Parsed to JSON rows.
"$BUILD_DIR/fig5_alltoall_io_volume" --max-pes 8 > "$tmpdir/fig5.txt"

awk '
  /^#/ { next }
  /^ *P / { for (i = 2; i <= NF; ++i) name[i] = $i; next }
  NF > 1 {
    printf "      {\"P\": %d", $1
    for (i = 2; i <= NF; ++i) printf ", \"%s\": %s", name[i], $i
    printf "},\n"
  }
' "$tmpdir/fig5.txt" | sed '$ s/,$//' > "$tmpdir/fig5_rows.json"

# 3. Storage-engine ablations. Each (backend, queue-depth) cell runs the
#    run-formation overlap ablation (sync vs async crossed with overlap
#    on/off; ioq_peak proves the async rows actually ran at depth) and the
#    final-merge prefetch ablation. Unavailable backends print a
#    '# storage=... unavailable' marker and exit 0; we record them skipped.
STORAGE_DIR="$tmpdir/storage"
mkdir -p "$STORAGE_DIR"
: > "$tmpdir/overlap_rows.json"
: > "$tmpdir/prefetch_rows.json"
: > "$tmpdir/merge_rows.json"
: > "$tmpdir/storage_skips.json"

overlap_to_rows() {  # $1=txt $2=storage $3=qd
  awk -v storage="$2" -v qd="$3" '
    /^#/ { next }
    $1 == "io" { next }
    NF >= 5 {
      printf "      {\"storage\": \"%s\", \"queue_depth\": %s, \"io\": \"%s\", \"overlap\": \"%s\", \"run_form_wall_ms\": %s, \"total_wall_ms\": %s, \"ioq_peak\": %s},\n",
             storage, qd, $1, $2, $3, $4, $5
    }
  ' "$1"
}

prefetch_to_rows() {  # $1=txt $2=storage $3=qd
  awk -v storage="$2" -v qd="$3" '
    /^#/ { next }
    $1 == "policy" { next }
    NF >= 4 {
      printf "      {\"storage\": \"%s\", \"queue_depth\": %s, \"policy\": \"%s\", \"pool_blocks\": %s, \"demand_fetches\": %s, \"merge_blocks\": %s},\n",
             storage, qd, $1, $2, $3, $4
    }
  ' "$1"
}

merge_to_rows() {  # $1=txt $2=storage $3=qd
  awk -v storage="$2" -v qd="$3" '
    /^#/ { next }
    $1 == "kernel" { next }
    NF >= 8 {
      printf "      {\"storage\": \"%s\", \"queue_depth\": %s, \"kernel\": \"%s\", \"keys\": \"%s\", \"threads\": %s, \"merge_wall_ms\": %s, \"workers\": %s, \"merge_cpu_ms\": %s, \"merge_io_wait_ms\": %s, \"demand_fetches\": %s},\n",
             storage, qd, $1, $2, $3, $4, $5, $6, $7, $8
    }
  ' "$1"
}

for cell in memory:1 memory:8 file:8 direct:8 uring:1 uring:8 uring:32 mmap:8; do
  storage="${cell%%:*}"
  qd="${cell##*:}"
  dir="$STORAGE_DIR/${storage}_qd${qd}"
  mkdir -p "$dir"
  txt="$tmpdir/overlap_${storage}_${qd}.txt"
  "$BUILD_DIR/ablation_overlap" --pes=4 --repeats=3 \
    --storage="$storage" --queue-depth="$qd" --file-dir="$dir" > "$txt"
  if grep -q '^# storage=.* unavailable' "$txt"; then
    reason="$(sed -n 's/^# storage=[a-z]* unavailable: //p' "$txt" | head -1)"
    printf '      {"storage": "%s", "queue_depth": %s, "reason": "%s"},\n' \
      "$storage" "$qd" "$reason" >> "$tmpdir/storage_skips.json"
    continue
  fi
  overlap_to_rows "$txt" "$storage" "$qd" >> "$tmpdir/overlap_rows.json"

  ptxt="$tmpdir/prefetch_${storage}_${qd}.txt"
  "$BUILD_DIR/ablation_prefetch" --pes=2 \
    --storage="$storage" --queue-depth="$qd" --file-dir="$dir" > "$ptxt"
  prefetch_to_rows "$ptxt" "$storage" "$qd" >> "$tmpdir/prefetch_rows.json"

  mtxt="$tmpdir/merge_${storage}_${qd}.txt"
  "$BUILD_DIR/ablation_merge" --elements=262144 --runs=8 --reps=2 \
    --storage="$storage" --queue-depth="$qd" --file-dir="$dir" > "$mtxt"
  merge_to_rows "$mtxt" "$storage" "$qd" >> "$tmpdir/merge_rows.json"
done

finish_rows() {  # strips the trailing comma of the last row (if any)
  sed '$ s/,$//' "$1"
}

{
  echo '{'
  echo '  "snapshot": "BENCH_PR9",'
  echo '  "fixed_params": {"fig5_elements_per_pe": 131072, "fig5_max_pes": 8, "ablation_pes": 4, "ablation_repeats": 3, "merge_elements": 262144, "merge_runs": 8, "merge_reps": 2},'
  echo '  "stream":'
  sed 's/^/  /' "$tmpdir/stream.json" | sed '$ s/}$/},/'
  echo '  "topo":'
  sed 's/^/  /' "$tmpdir/topo.json" | sed '$ s/}$/},/'
  echo '  "fig5_a2a_io_over_n": {'
  echo '    "rows": ['
  cat "$tmpdir/fig5_rows.json"
  echo '    ]'
  echo '  },'
  echo '  "storage_overlap_ablation": {'
  echo '    "rows": ['
  finish_rows "$tmpdir/overlap_rows.json"
  echo '    ]'
  echo '  },'
  echo '  "storage_prefetch_ablation": {'
  echo '    "rows": ['
  finish_rows "$tmpdir/prefetch_rows.json"
  echo '    ]'
  echo '  },'
  echo '  "merge_engine_ablation": {'
  echo '    "rows": ['
  finish_rows "$tmpdir/merge_rows.json"
  echo '    ]'
  echo '  },'
  echo '  "storage_skipped": ['
  finish_rows "$tmpdir/storage_skips.json"
  echo '  ]'
  echo '}'
} > "$OUT"

# 4. Straggler snapshot: one P=4 hierarchical sort with the per-rank
#    per-phase stats JSON, structurally validated before it is kept.
"$BUILD_DIR/sortbench_cli" --transport=hier --pes 4 --pes-per-node 2 \
  --records-per-pe 20000 --stats-json="$OUT.stats.json" > /dev/null
"$BUILD_DIR/trace_lint" --stats "$OUT.stats.json" --expect-pes=4 > /dev/null

echo "wrote $OUT and $OUT.stats.json"
