#!/usr/bin/env bash
# Reproducible perf snapshot: runs the streaming-collective comparison
# (micro_net --credit-compare), the flat-vs-hierarchical topology sweep
# (micro_net --topo-compare, P=8 at 2 PEs/node — since the zero-copy
# leader path this also gates two-level wall <= 1.25x flat and intra-node
# bytes < 2x flat), and the fig5 all-to-all I/O-volume sweep at fixed
# seeds/sizes, and emits one machine-readable BENCH_PR6.json — the file
# future PRs diff to see the perf trajectory.
#
# Usage: bench/run_bench.sh [BUILD_DIR] [OUT_JSON]
#   BUILD_DIR  cmake build directory holding micro_net + fig5 (default: build)
#   OUT_JSON   output path (default: BENCH_PR6.json in the repo root)
#
# Everything here is deterministic up to wall-clock timings: the workload
# seeds are fixed (FigureConfig's default seed), the sweep sizes are pinned
# below, and message/volume/connection counters are exact — compare those,
# not seconds.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_PR6.json}"

if [[ ! -x "$BUILD_DIR/micro_net" ]]; then
  echo "error: $BUILD_DIR/micro_net not built (need Google Benchmark)" >&2
  exit 2
fi
if [[ ! -x "$BUILD_DIR/fig5_alltoall_io_volume" ]]; then
  echo "error: $BUILD_DIR/fig5_alltoall_io_volume not built" >&2
  exit 2
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

# 1. Streaming credit/chunk comparison (also the pass/fail smoke).
"$BUILD_DIR/micro_net" --credit-compare --snapshot="$tmpdir/stream.json"

# 1b. Flat vs hierarchical schedules over the same 2-PEs/node machine
#     (also the pass/fail smoke: fewer uplink messages, N*(N-1) links,
#     two-level wall <= 1.25x flat, intra-node bytes < 2x flat).
"$BUILD_DIR/micro_net" --topo-compare --snapshot="$tmpdir/topo.json"

# 2. Fig. 5 all-to-all I/O volume at fixed sizes: P = 1..8 at the default
#    131072 elements/PE — large enough that the a2a phase actually hits
#    disk (tiny inputs take the in-place fast path and report all-zero
#    columns, which would carry no trajectory signal). Parsed to JSON rows.
"$BUILD_DIR/fig5_alltoall_io_volume" --max-pes 8 > "$tmpdir/fig5.txt"

awk '
  /^#/ { next }
  /^ *P / { for (i = 2; i <= NF; ++i) name[i] = $i; next }
  NF > 1 {
    printf "      {\"P\": %d", $1
    for (i = 2; i <= NF; ++i) printf ", \"%s\": %s", name[i], $i
    printf "},\n"
  }
' "$tmpdir/fig5.txt" | sed '$ s/,$//' > "$tmpdir/fig5_rows.json"

{
  echo '{'
  echo '  "snapshot": "BENCH_PR6",'
  echo '  "fixed_params": {"fig5_elements_per_pe": 131072, "fig5_max_pes": 8},'
  echo '  "stream":'
  sed 's/^/  /' "$tmpdir/stream.json" | sed '$ s/}$/},/'
  echo '  "topo":'
  sed 's/^/  /' "$tmpdir/topo.json" | sed '$ s/}$/},/'
  echo '  "fig5_a2a_io_over_n": {'
  echo '    "rows": ['
  cat "$tmpdir/fig5_rows.json"
  echo '    ]'
  echo '  }'
  echo '}'
} > "$OUT"

echo "wrote $OUT"
