// Figure 6 reproduction: running times for WORST-CASE input WITHOUT
// randomization, P = 1..64.
//
// Paper shape: up to ~50% running-time penalty versus Figs. 2/4 — without
// randomization every run covers a narrow key slice, so (almost) all data
// is misplaced after run formation and the external all-to-all performs an
// extra read+write of nearly everything (4N -> 6N I/O volume).
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace demsort;
  FlagParser flags(argc, argv);
  uint64_t elements_per_pe = static_cast<uint64_t>(
      flags.GetInt("elements-per-pe", (2 << 20) / 16));
  core::SortConfig config = bench::FigureConfig(
      static_cast<size_t>(flags.GetInt("block-size", 4 * 1024)));
  config.randomize_blocks = false;

  sim::CostModel model;
  std::printf(
      "# Fig. 6 — CANONICALMERGESORT, worst-case input, NO randomization\n"
      "# %llu elements/PE, B=%zu, m=%zu B, D=%u\n",
      static_cast<unsigned long long>(elements_per_pe), config.block_size,
      config.memory_per_pe, config.disks_per_pe);
  bench::PrintPhaseHeader();
  for (int p : bench::PeSweep(flags)) {
    bench::SortRunResult run = bench::RunCanonical(
        p, workload::Distribution::kWorstCaseLocal, config,
        elements_per_pe);
    bench::PrintPhaseRow(p, run, model);
    std::fflush(stdout);
  }
  return 0;
}
