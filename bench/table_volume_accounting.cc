// §IV-D accounting table: CANONICALMERGESORT needs "I/O volume 4N + o(N),
// communication volume N + o(N)"; GLOBALSTRIPEDMERGESORT needs 4-5
// communications of the data for two passes. This bench prints the measured
// volumes normalized by N for both algorithms across distributions.
#include <cstdio>
#include <mutex>

#include "bench_util.h"
#include "core/striped_mergesort.h"

namespace {

using namespace demsort;

struct Volumes {
  double io_over_n = 0;
  double comm_over_n = 0;
  bool valid = false;
};

Volumes Measure(bool striped, workload::Distribution dist, bool randomize,
                int num_pes, uint64_t elements_per_pe) {
  core::SortConfig config = bench::FigureConfig();
  config.randomize_blocks = randomize;
  uint64_t io_bytes = 0;
  std::mutex mu;
  bool all_valid = true;
  auto net = net::Cluster::RunWithStats(num_pes, [&](net::Comm& comm) {
    core::PeResources resources(&comm, config);
    core::PeContext& ctx = resources.ctx();
    auto gen = workload::GenerateKV16(ctx.bm, dist, elements_per_pe,
                                      comm.rank(), num_pes, config.seed);
    uint64_t my_io = 0;
    workload::ValidationResult v;
    if (striped) {
      auto out = core::StripedMergeSort<core::KV16>(ctx, config, gen.input);
      v = workload::ValidateStripedCollective<core::KV16>(
          ctx, out.stream.my_blocks, out.stream.total_elements,
          gen.checksum);
      for (int p = 0; p < 4; ++p) my_io += out.report.phase[p].io.bytes();
    } else {
      auto out =
          core::CanonicalMergeSort<core::KV16>(ctx, config, gen.input);
      v = workload::ValidateCollective<core::KV16>(ctx, out.blocks,
                                                   out.num_elements,
                                                   gen.checksum);
      for (int p = 0; p < 4; ++p) my_io += out.report.phase[p].io.bytes();
    }
    std::lock_guard<std::mutex> lock(mu);
    io_bytes += my_io;
    if (!v.ok()) all_valid = false;
  });
  uint64_t comm_bytes = 0;
  for (auto& s : net) comm_bytes += s.bytes_sent;
  double n_bytes = static_cast<double>(num_pes) * elements_per_pe *
                   sizeof(core::KV16);
  return Volumes{io_bytes / n_bytes, comm_bytes / n_bytes, all_valid};
}

}  // namespace

int main(int argc, char** argv) {
  using workload::Distribution;
  FlagParser flags(argc, argv);
  int num_pes = static_cast<int>(flags.GetInt("pes", 8));
  uint64_t elements_per_pe = static_cast<uint64_t>(
      flags.GetInt("elements-per-pe", (2 << 20) / 16));

  std::printf(
      "# §IV-D volume accounting, P=%d, %llu elements/PE\n"
      "# claims: canonical io/N -> 4 (6 for non-randomized worst case), "
      "comm/N -> ~1 (x(P-1)/P);\n"
      "#         striped comm/N -> ~4 (sort + striped write, both "
      "passes)\n",
      num_pes, static_cast<unsigned long long>(elements_per_pe));
  std::printf("%-10s  %-10s  %-6s  %8s  %10s  %6s\n", "algorithm",
              "input", "rand", "io/N", "comm/N", "valid");

  struct Case {
    const char* algo;
    bool striped;
    Distribution dist;
    const char* dist_name;
    bool randomize;
  };
  const Case cases[] = {
      {"canonical", false, Distribution::kUniform, "random", true},
      {"canonical", false, Distribution::kWorstCaseLocal, "worstcase", true},
      {"canonical", false, Distribution::kWorstCaseLocal, "worstcase",
       false},
      {"canonical", false, Distribution::kSortedGlobal, "sorted", false},
      {"striped", true, Distribution::kUniform, "random", true},
      {"striped", true, Distribution::kWorstCaseLocal, "worstcase", true},
  };
  for (const Case& c : cases) {
    Volumes v = Measure(c.striped, c.dist, c.randomize, num_pes,
                        elements_per_pe);
    std::printf("%-10s  %-10s  %-6s  %8.3f  %10.3f  %6s\n", c.algo,
                c.dist_name, c.randomize ? "yes" : "no", v.io_over_n,
                v.comm_over_n, v.valid ? "yes" : "NO");
    std::fflush(stdout);
  }
  return 0;
}
