// Figure 2 reproduction: running times for RANDOM input, split by phase,
// weak scaling over P = 1..64 PEs (paper: 100 GiB per PE; here scaled, see
// bench_util.h).
//
// Paper shape to reproduce: near-flat total time as P grows; run formation
// and final merge of similar magnitude and dominating; multiway selection
// negligible; all-to-all small (randomized run formation already places
// most data).
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace demsort;
  FlagParser flags(argc, argv);
  uint64_t elements_per_pe = static_cast<uint64_t>(
      flags.GetInt("elements-per-pe", (2 << 20) / 16));  // 2 MiB of KV16
  core::SortConfig config = bench::FigureConfig(
      static_cast<size_t>(flags.GetInt("block-size", 4 * 1024)));

  sim::CostModel model;
  std::printf(
      "# Fig. 2 — CANONICALMERGESORT, random input, weak scaling\n"
      "# %llu elements/PE (16 B each), B=%zu, m=%zu B, D=%u, randomized\n"
      "# modeled seconds on the paper's testbed constants; emulation wall "
      "ms for reference\n",
      static_cast<unsigned long long>(elements_per_pe), config.block_size,
      config.memory_per_pe, config.disks_per_pe);
  bench::PrintPhaseHeader();
  for (int p : bench::PeSweep(flags)) {
    bench::SortRunResult run = bench::RunCanonical(
        p, workload::Distribution::kUniform, config, elements_per_pe);
    bench::PrintPhaseRow(p, run, model);
    std::fflush(stdout);
  }
  return 0;
}
