// Ablation: the parallel external merge engine (range-partitioned
// multi-threaded final merge, batched loser-tree kernels) against the
// record-at-a-time single-threaded baseline.
//
// Drives FinalMerge directly on one PE — sorted runs are fabricated and
// written through the striped writer, then merged under every
// (kernel, threads) cell — so the numbers isolate the merge engine from
// run formation and redistribution. Storage flags sweep the backends like
// the other storage ablations; unavailable backends skip with a marker.
//
// --self-check: the CI smoke. Merges once with 1 thread and once with
// --threads threads (batched kernel, whatever storage is configured) and
// fails unless the parallel wall is at most --max-ratio of single-thread.
// Skips (exit 0) when the host has fewer cores than --threads: the
// speedup assertion is meaningless on a box that cannot run the workers.
#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/final_merge.h"
#include "core/phase_stats.h"
#include "io/striped_writer.h"
#include "util/random.h"

namespace {

using namespace demsort;
using KV = core::KV16;
using KVLess = core::RecordTraits<KV>::Less;

struct MergeTiming {
  double wall_ms = 0;
  uint64_t demand_fetches = 0;
  uint64_t workers = 0;
  double cpu_ms = 0;
  double io_wait_ms = 0;
  bool sorted = true;
};

/// Builds `num_runs` sorted runs totalling `elements` records on the PE's
/// disks, merges them, and reports the best-of-`reps` merge wall. The
/// output blocks are freed between reps so repetitions don't accumulate.
/// `clustered` draws each run's keys from its own disjoint range (runs from
/// distinct input localities), the case the galloped batch kernel targets;
/// otherwise keys are uniform over the full key space (maximally
/// interleaved, spans ~1 record).
MergeTiming TimeMerge(const core::SortConfig& config, uint64_t elements,
                      int num_runs, int reps, bool clustered) {
  MergeTiming best;
  best.wall_ms = 1e300;
  net::Cluster::Run(1, [&](net::Comm& comm) {
    core::PeResources resources(&comm, config);
    core::PeContext& ctx = resources.ctx();
    for (int rep = 0; rep < reps; ++rep) {
      Rng rng(config.seed + rep);
      std::vector<std::vector<core::Extent<KV>>> extents(num_runs);
      uint64_t range = UINT64_MAX / static_cast<uint64_t>(num_runs);
      for (int j = 0; j < num_runs; ++j) {
        std::vector<KV> run(elements / num_runs);
        uint64_t base = clustered ? range * static_cast<uint64_t>(j) : 0;
        for (auto& r : run) {
          r = {base + (clustered ? rng.Below(range) : rng.Next()),
               rng.Next()};
        }
        std::sort(run.begin(), run.end(), KVLess());
        io::StripedWriter<KV> writer(ctx.bm);
        writer.AppendSpan(run.data(), run.size());
        writer.Finish();
        core::Extent<KV> ext;
        ext.run = static_cast<uint32_t>(j);
        ext.start_pos = 0;
        ext.count = run.size();
        ext.blocks = writer.blocks();
        ext.block_first_records = writer.block_first_records();
        extents[j].push_back(std::move(ext));
      }
      core::PhaseStats stats;
      int64_t t0 = NowNanos();
      core::MergeOutput<KV> out =
          core::FinalMerge<KV>(ctx, config, std::move(extents), &stats);
      double wall = (NowNanos() - t0) * 1e-6;
      bool sorted = true;
      for (size_t i = 1; i < out.block_first_records.size(); ++i) {
        if (KVLess()(out.block_first_records[i],
                     out.block_first_records[i - 1])) {
          sorted = false;
        }
      }
      for (const io::BlockId& id : out.blocks) ctx.bm->Free(id);
      if (wall < best.wall_ms) {
        best.wall_ms = wall;
        best.demand_fetches = stats.demand_fetches;
        best.workers = stats.merge_workers;
        best.cpu_ms = stats.merge_cpu_ms;
        best.io_wait_ms = stats.merge_io_wait_ms;
      }
      best.sorted = best.sorted && sorted;
    }
  });
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  uint64_t elements =
      static_cast<uint64_t>(flags.GetInt("elements", (32 << 20) / 16));
  int num_runs = static_cast<int>(flags.GetInt("runs", 16));
  int reps = static_cast<int>(flags.GetInt("reps", 3));
  int max_threads = static_cast<int>(flags.GetInt("threads", 4));
  bool self_check = flags.GetBool("self-check", false);

  core::SortConfig base = bench::FigureConfig(/*block_size=*/16 * 1024);
  base.memory_per_pe = 8 * 1024 * 1024;
  if (!bench::ApplyStorageFlags(flags, &base)) return 0;

  if (self_check) {
    unsigned hw = std::thread::hardware_concurrency();
    if (hw != 0 && hw < static_cast<unsigned>(max_threads)) {
      std::printf("# self-check skipped: %u hardware threads < %d\n", hw,
                  max_threads);
      return 0;
    }
    double max_ratio = flags.GetInt("max-ratio-pct", 75) / 100.0;
    core::SortConfig seq = base;
    seq.threads_per_pe = 1;
    core::SortConfig par = base;
    par.threads_per_pe = static_cast<uint32_t>(max_threads);
    MergeTiming t1 = TimeMerge(seq, elements, num_runs, reps, false);
    MergeTiming tp = TimeMerge(par, elements, num_runs, reps, false);
    double ratio = tp.wall_ms / t1.wall_ms;
    std::printf(
        "merge self-check: storage=%s 1 thread %.1f ms, %d threads %.1f ms "
        "(workers=%llu), ratio %.2f (required <= %.2f)\n",
        io::BackendKindName(base.backend), t1.wall_ms, max_threads,
        tp.wall_ms, static_cast<unsigned long long>(tp.workers), ratio,
        max_ratio);
    if (!t1.sorted || !tp.sorted) {
      std::printf("FAIL: merge output not sorted\n");
      return 1;
    }
    if (ratio > max_ratio) {
      std::printf("FAIL: parallel merge too slow\n");
      return 1;
    }
    std::printf("OK\n");
    return 0;
  }

  std::printf(
      "# Ablation — parallel final merge, storage=%s, qd=%zu, %llu "
      "elements, R=%d runs, best of %d\n",
      io::BackendKindName(base.backend), base.io_queue_depth,
      static_cast<unsigned long long>(elements), num_runs, reps);
  std::printf("%-8s  %-9s  %8s  %10s  %8s  %12s  %12s  %14s\n", "kernel",
              "keys", "threads", "wall_ms", "workers", "mrg_cpu_ms",
              "mrg_iow_ms", "demand_fetches");

  struct Case {
    const char* name;
    core::MergeKernel kernel;
    bool clustered;
    int threads;
  };
  std::vector<Case> cases;
  for (bool clustered : {false, true}) {
    for (int t : {1, 2, 4}) {
      if (t > max_threads) continue;
      cases.push_back(
          {"record", core::MergeKernel::kRecordAtATime, clustered, t});
      cases.push_back({"batched", core::MergeKernel::kBatched, clustered, t});
    }
  }
  for (const Case& c : cases) {
    core::SortConfig config = base;
    config.merge_kernel = c.kernel;
    config.threads_per_pe = static_cast<uint32_t>(c.threads);
    MergeTiming t = TimeMerge(config, elements, num_runs, reps, c.clustered);
    std::printf("%-8s  %-9s  %8d  %10.1f  %8llu  %12.1f  %12.1f  %14llu%s\n",
                c.name, c.clustered ? "clustered" : "uniform", c.threads,
                t.wall_ms, static_cast<unsigned long long>(t.workers),
                t.cpu_ms, t.io_wait_ms,
                static_cast<unsigned long long>(t.demand_fetches),
                t.sorted ? "" : "  NOT-SORTED");
    std::fflush(stdout);
  }
  return 0;
}
