// Ablation: prediction-sequence prefetching ([11]/[14], used by the final
// merge) versus naive per-run double buffering.
//
// The metric that matters on real disks is how often the merge *stalls* on
// a block the prefetcher has not issued yet (demand fetches), as a function
// of the buffer pool it is allowed. The prediction sequence fetches blocks
// in exactly the order the merge consumes them, so a pool barely larger
// than the disk count already eliminates stalls; naive double buffering
// hardwires 2 buffers per run (2R total) no matter what. (Real wall time of
// the emulated merge is dominated by thread wake-ups on the zero-latency
// RAM disks, so it is not reported here; fig benches report modeled time.)
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace demsort;
  FlagParser flags(argc, argv);
  int num_pes = static_cast<int>(flags.GetInt("pes", 2));
  uint64_t elements_per_pe = static_cast<uint64_t>(
      flags.GetInt("elements-per-pe", (4 << 20) / 16));

  core::SortConfig base = bench::FigureConfig();
  if (!bench::ApplyStorageFlags(flags, &base)) return 0;
  uint64_t runs = elements_per_pe /
                  base.ElementsPerPeMemory<core::KV16>();

  std::printf(
      "# Ablation — final-merge prefetch policy, storage=%s, qd=%zu, P=%d, "
      "%llu elements/PE, R=%llu runs\n"
      "# demand fetch = merge needed a block before the policy issued it\n",
      io::BackendKindName(base.backend), base.io_queue_depth, num_pes,
      static_cast<unsigned long long>(elements_per_pe),
      static_cast<unsigned long long>(runs));
  std::printf("%-11s  %12s  %16s  %14s\n", "policy", "pool_blocks",
              "demand_fetches", "merge_blocks");

  struct Case {
    const char* name;
    core::PrefetchMode mode;
    size_t buffers;  // 0 = auto
  };
  std::vector<Case> cases = {
      {"prediction", core::PrefetchMode::kPrediction, 2},
      {"prediction", core::PrefetchMode::kPrediction, 4},
      {"prediction", core::PrefetchMode::kPrediction, 8},
      {"prediction", core::PrefetchMode::kPrediction, 0},
      {"naive", core::PrefetchMode::kNaive, 0},
  };
  for (const Case& c : cases) {
    core::SortConfig config = base;
    config.prefetch = c.mode;
    config.prefetch_buffers = c.buffers;
    bench::SortRunResult run = bench::RunCanonical(
        num_pes, workload::Distribution::kUniform, config, elements_per_pe);
    uint64_t demand = 0, blocks = 0;
    for (const auto& r : run.reports) {
      const auto& s = r.Get(core::Phase::kFinalMerge);
      demand += s.demand_fetches;
      blocks += s.io.reads;
    }
    size_t effective_pool =
        c.mode == core::PrefetchMode::kNaive
            ? 2 * static_cast<size_t>(runs)
            : (c.buffers != 0
                   ? c.buffers
                   : std::max<size_t>(2 * static_cast<size_t>(runs),
                                      2 * config.disks_per_pe) +
                         2);
    std::printf("%-11s  %12zu  %16llu  %14llu%s\n", c.name, effective_pool,
                static_cast<unsigned long long>(demand),
                static_cast<unsigned long long>(blocks),
                run.valid ? "" : "  INVALID");
    std::fflush(stdout);
  }
  return 0;
}
