// Ablation: the §IV-A selection optimizations. The paper keeps the
// per-block sample in memory and caches recently accessed blocks so that
// "the resulting selection algorithm takes negligible time". We sweep the
// sample rate K (elements between samples) and report the selection
// phase's BSP fetch rounds, disk traffic, and modeled time: coarser samples
// mean wider uncertainty windows, more fetched blocks and more rounds.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace demsort;
  FlagParser flags(argc, argv);
  int num_pes = static_cast<int>(flags.GetInt("pes", 8));
  uint64_t elements_per_pe = static_cast<uint64_t>(
      flags.GetInt("elements-per-pe", (2 << 20) / 16));

  core::SortConfig base = bench::FigureConfig();
  size_t epb = base.ElementsPerBlock<core::KV16>();
  sim::CostModel model;

  std::printf(
      "# Ablation — multiway selection sampling granularity, P=%d\n"
      "# K = elements between samples (paper/App. B default: one per "
      "block = %zu)\n",
      num_pes, epb);
  std::printf("%8s  %8s  %14s  %16s  %12s\n", "K", "rounds",
              "select_io_KiB", "select_comm_KiB", "modeled_ms");

  for (size_t k : {epb / 4, epb, 4 * epb, 16 * epb, 64 * epb}) {
    core::SortConfig config = base;
    config.sample_every_k = k;
    bench::SortRunResult run = bench::RunCanonical(
        num_pes, workload::Distribution::kUniform, config, elements_per_pe);
    uint64_t rounds = 0, io_bytes = 0, comm_bytes = 0;
    for (const auto& r : run.reports) {
      const auto& s = r.Get(core::Phase::kMultiwaySelection);
      rounds = std::max(rounds, s.selection_rounds);
      io_bytes += s.io.bytes();
      comm_bytes += s.net.bytes_sent;
    }
    double modeled_ms =
        model.ClusterPhaseSeconds(core::Phase::kMultiwaySelection,
                                  run.reports)
            .total_s *
        1e3;
    std::printf("%8zu  %8llu  %14.1f  %16.1f  %12.3f%s\n", k,
                static_cast<unsigned long long>(rounds), io_bytes / 1024.0,
                comm_bytes / 1024.0, modeled_ms,
                run.valid ? "" : "  INVALID");
    std::fflush(stdout);
  }
  return 0;
}
