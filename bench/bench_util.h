// Shared harness for the figure/table reproductions.
//
// Geometry scaling (documented in DESIGN.md): the paper sorts 100 GiB/PE
// with 16-byte elements, B = 8 MiB blocks, m = 2^34 bytes of node memory and
// D = 4 disks/node. We shrink every length by ~2^11 while preserving the
// ratios that drive the algorithm's regimes:
//   B = 4 KiB, m = 512 KiB (=> m/B = 128 blocks of memory per PE),
//   N/PE = 2 MiB (=> R = N/M = 4 runs, paper ~6),
//   seek/transfer ratio of the disk model preserved by scaling seek time
//   with the block size.
// Times are reported two ways: real wall milliseconds of the emulation
// (meaningless vs the paper, 2 cores emulate everything) and modeled
// seconds from sim::CostModel applied to the *exactly measured* per-phase
// I/O and communication volumes.
#ifndef DEMSORT_BENCH_BENCH_UTIL_H_
#define DEMSORT_BENCH_BENCH_UTIL_H_

#include <sys/stat.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "core/canonical_mergesort.h"
#include "core/config.h"
#include "core/pe_context.h"
#include "core/phase_stats.h"
#include "core/record.h"
#include "io/backend.h"
#include "io/block_manager.h"
#include "net/cluster.h"
#include "net/tcp_transport.h"
#include "sim/cost_model.h"
#include "util/flags.h"
#include "util/timer.h"
#include "workload/generators.h"
#include "workload/validator.h"

namespace demsort::bench {

inline core::SortConfig FigureConfig(size_t block_size = 4 * 1024) {
  core::SortConfig config;
  config.block_size = block_size;
  config.memory_per_pe = 512 * 1024;
  config.disks_per_pe = 4;
  config.threads_per_pe = 1;
  config.async_io = false;  // identical semantics; keeps 64-PE sweeps lean
  config.seed = 20091014;   // arXiv date of the paper
  // The scaled testbed's disk: all lengths shrink by 2048 (8 MiB -> 4 KiB
  // reference block), so the seek time shrinks by the same factor — and
  // stays FIXED when a bench sweeps the block size, exactly like a physical
  // disk would (smaller blocks => more seeks => worse throughput).
  config.disk_model.seek_ms = 12.0 / 2048.0;
  config.disk_model.mib_per_s = 67.0;
  return config;
}

struct SortRunResult {
  std::vector<core::SortReport> reports;
  double wall_ms = 0;
  bool valid = false;
  uint64_t total_elements = 0;
};

/// How a bench run drives its PEs over the substrate. A PE or link failure
/// during a measured run propagates out of RunCanonical as net::CommError
/// (rethrown by the cluster harness) — a bench never hangs on a dead PE;
/// the TCP mesh setup is likewise bounded by the connect deadline.
struct RunOptions {
  net::TransportKind transport = net::TransportKind::kInProc;
  /// In-process fabric (per-channel cap) or hier (node-uplink channel
  /// cap): in-flight byte bound, 0 = off.
  size_t channel_cap_bytes = 0;
  /// TCP (reader-thread mailbox watermark) or hier (demux pause
  /// watermark): 0 = drain eagerly.
  size_t tcp_recv_watermark_bytes = 0;
  /// TCP only: mesh-setup deadline (0 = wait forever).
  int64_t tcp_connect_timeout_ms = 30'000;
  /// Hier only: PEs per emulated node (0 = the default of 2).
  int pes_per_node = 0;
  /// Outstanding-lease cap of each endpoint's frame-buffer pool
  /// (net::BufferPool); 0 = unbounded.
  size_t pool_budget_bytes = 0;
};

/// Parses --transport / --channel-cap / --recv-watermark /
/// --connect-timeout-ms / --pes-per-node / --pool-budget; a bad value
/// aborts the bench (a silent inproc fallback would mislabel every
/// measured number).
inline RunOptions RunOptionsFromFlags(const FlagParser& flags) {
  RunOptions options;
  auto kind = net::ParseTransportKind(flags.GetString("transport", "inproc"));
  if (!kind.ok()) {
    std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
    std::exit(2);
  }
  options.transport = kind.value();
  int64_t cap = ParseSize(flags.GetString("channel-cap", "0"));
  if (cap < 0) {
    std::fprintf(stderr, "--channel-cap must be >= 0\n");
    std::exit(2);
  }
  options.channel_cap_bytes = static_cast<size_t>(cap);
  if (options.transport == net::TransportKind::kTcp &&
      options.channel_cap_bytes != 0) {
    std::fprintf(stderr,
                 "--channel-cap applies to the in-process fabric and the "
                 "hier uplink only\n");
    std::exit(2);
  }
  int64_t watermark = ParseSize(flags.GetString("recv-watermark", "0"));
  if (watermark < 0) {
    std::fprintf(stderr, "--recv-watermark must be >= 0\n");
    std::exit(2);
  }
  options.tcp_recv_watermark_bytes = static_cast<size_t>(watermark);
  if (options.transport == net::TransportKind::kInProc &&
      options.tcp_recv_watermark_bytes != 0) {
    std::fprintf(stderr,
                 "--recv-watermark applies to the tcp and hier transports "
                 "only\n");
    std::exit(2);
  }
  int64_t pes_per_node = flags.GetInt("pes-per-node", 0);
  if (pes_per_node < 0 ||
      (pes_per_node != 0 && options.transport != net::TransportKind::kHier)) {
    std::fprintf(stderr,
                 "--pes-per-node applies to the hier transport only\n");
    std::exit(2);
  }
  options.pes_per_node = static_cast<int>(pes_per_node);
  int64_t connect_timeout =
      flags.GetInt("connect-timeout-ms", options.tcp_connect_timeout_ms);
  if (connect_timeout < 0) {
    std::fprintf(stderr, "--connect-timeout-ms must be >= 0\n");
    std::exit(2);
  }
  options.tcp_connect_timeout_ms = connect_timeout;
  int64_t pool_budget = ParseSize(flags.GetString("pool-budget", "0"));
  if (pool_budget < 0) {
    std::fprintf(stderr, "--pool-budget must be >= 0\n");
    std::exit(2);
  }
  options.pool_budget_bytes = static_cast<size_t>(pool_budget);
  return options;
}

/// Parses --storage={memory,file,direct,uring,mmap}, --file-dir=DIR,
/// --files-per-disk=K and --queue-depth=N into `config`. A malformed value
/// aborts the bench; a backend the HOST cannot serve (O_DIRECT on tmpfs,
/// io_uring filtered or compiled out) prints a '# storage ... unavailable'
/// marker and returns false — callers exit 0 so sweep scripts record a
/// skip, not a failure.
inline bool ApplyStorageFlags(const FlagParser& flags,
                              core::SortConfig* config) {
  std::string storage = flags.GetString("storage", "");
  if (!storage.empty()) {
    auto kind = io::ParseBackendKind(storage);
    if (!kind.ok()) {
      std::fprintf(stderr, "--storage: %s\n",
                   kind.status().ToString().c_str());
      std::exit(2);
    }
    config->backend = kind.value();
  }
  config->files_per_disk = static_cast<uint32_t>(
      flags.GetInt("files-per-disk", config->files_per_disk));
  config->io_queue_depth =
      static_cast<size_t>(flags.GetInt("queue-depth", 0));
  if (io::IsFileBacked(config->backend)) {
    config->file_dir = flags.GetString("file-dir", "/tmp/demsort_bench");
    if (::mkdir(config->file_dir.c_str(), 0755) != 0 && errno != EEXIST) {
      std::fprintf(stderr, "--file-dir %s: %s\n", config->file_dir.c_str(),
                   std::strerror(errno));
      std::exit(2);
    }
    Status probe = io::BlockManager::ProbeBackend(
        config->backend, config->block_size, config->file_dir);
    if (!probe.ok()) {
      std::printf("# storage=%s unavailable: %s\n",
                  io::BackendKindName(config->backend),
                  probe.ToString().c_str());
      return false;
    }
  }
  return true;
}

/// Runs CANONICALMERGESORT on P emulated PEs and validates the output.
inline SortRunResult RunCanonical(int num_pes, workload::Distribution dist,
                                  const core::SortConfig& config,
                                  uint64_t elements_per_pe,
                                  const RunOptions& run_options = {}) {
  SortRunResult result;
  // Credit frames share the socket with data frames; a watermark below one
  // credit window lets the reader pause with a credit queued behind data,
  // throttling the streamed exchanges (see TcpTransport::Options). The
  // window is sized from the LARGEST chunk the adaptive controller may
  // grow to, not the configured initial chunk — and on the hierarchical
  // transport by the number of PEs SHARING the node's uplink endpoint,
  // whose flows all land behind the same demux pause: a per-PE-sized
  // watermark would silently under-provision the node endpoint.
  if (run_options.tcp_recv_watermark_bytes != 0 ||
      run_options.pool_budget_bytes != 0) {
    size_t chunk = config.stream_chunk_bytes != 0
                       ? config.stream_chunk_bytes
                       : net::Comm::kDefaultStreamChunkBytes;
    size_t max_chunk = config.stream_chunk_max_bytes != 0
                           ? config.stream_chunk_max_bytes
                           : chunk * net::kStreamAutoRangeFactor;
    if (config.stream_chunk_mode == net::StreamChunkMode::kFixed) {
      max_chunk = chunk;
    }
    size_t pes_per_uplink =
        run_options.transport == net::TransportKind::kHier
            ? static_cast<size_t>(
                  run_options.pes_per_node > 0 ? run_options.pes_per_node : 2)
            : 1;
    size_t credit_window = net::Comm::kStreamSendCreditChunks *
                           (max_chunk + sizeof(net::StreamChunkHeader)) *
                           pes_per_uplink;
    if ((run_options.transport == net::TransportKind::kTcp ||
         run_options.transport == net::TransportKind::kHier) &&
        run_options.tcp_recv_watermark_bytes != 0 &&
        run_options.tcp_recv_watermark_bytes < credit_window) {
      std::fprintf(stderr,
                   "warning: --recv-watermark=%zu is below the streaming "
                   "credit window (%zu bytes = %llu chunks x %zu max x %zu "
                   "PE(s) per uplink); credit frames may stall behind "
                   "paused reads\n",
                   run_options.tcp_recv_watermark_bytes, credit_window,
                   static_cast<unsigned long long>(
                       net::Comm::kStreamSendCreditChunks),
                   max_chunk, pes_per_uplink);
    }
    // The pool budget gates frame LEASES like the watermark gates frame
    // delivery: with a watermark pause holding up to a watermark's worth
    // of leased frames undrained, the sender still needs a credit window
    // of fresh leases to keep the exchange moving. A budget below the sum
    // can park every leased byte behind the pause while the sender blocks
    // in Lease — a stall no credit message can break.
    if (run_options.pool_budget_bytes != 0 &&
        run_options.pool_budget_bytes <
            run_options.tcp_recv_watermark_bytes + credit_window) {
      std::fprintf(stderr,
                   "warning: --pool-budget=%zu is below the recv watermark "
                   "(%zu) plus one streaming credit window (%zu bytes); "
                   "frame leases may stall behind paused deliveries\n",
                   run_options.pool_budget_bytes,
                   run_options.tcp_recv_watermark_bytes, credit_window);
    }
  }
  result.reports.resize(num_pes);
  std::mutex mu;
  bool all_valid = true;
  int64_t start = NowNanos();
  auto body = [&](net::Comm& comm) {
    core::PeResources resources(&comm, config);
    core::PeContext& ctx = resources.ctx();
    auto gen = workload::GenerateKV16(ctx.bm, dist, elements_per_pe,
                                      comm.rank(), num_pes, config.seed);
    core::SortOutput<core::KV16> out =
        core::CanonicalMergeSort<core::KV16>(ctx, config, gen.input);
    auto v = workload::ValidateCollective<core::KV16>(
        ctx, out.blocks, out.num_elements, gen.checksum);
    std::lock_guard<std::mutex> lock(mu);
    result.reports[comm.rank()] = out.report;
    if (!v.ok() || !v.partition_exact) all_valid = false;
  };
  net::Cluster::Options cluster_options;
  cluster_options.num_pes = num_pes;
  cluster_options.channel_cap_bytes = run_options.channel_cap_bytes;
  cluster_options.tcp_recv_watermark_bytes =
      run_options.tcp_recv_watermark_bytes;
  cluster_options.tcp_connect_timeout_ms =
      run_options.tcp_connect_timeout_ms;
  cluster_options.pes_per_node = run_options.pes_per_node;
  cluster_options.pool_budget_bytes = run_options.pool_budget_bytes;
  net::RunOverTransport(run_options.transport, cluster_options, body);
  result.wall_ms = (NowNanos() - start) * 1e-6;
  result.valid = all_valid;
  result.total_elements = static_cast<uint64_t>(num_pes) * elements_per_pe;
  return result;
}

/// Peak receive-side network buffering of a run: max over PEs and phases
/// of the transport's delivered-but-unconsumed bytes — the footprint the
/// streaming exchanges bound at O(chunk x sources).
inline uint64_t PeakNetBufferBytes(const SortRunResult& run) {
  uint64_t peak = 0;
  for (const core::SortReport& report : run.reports) {
    for (int p = 0; p < static_cast<int>(core::Phase::kNumPhases); ++p) {
      peak = std::max(
          peak,
          report.Get(static_cast<core::Phase>(p)).net.recv_buffer_peak_bytes);
    }
  }
  return peak;
}

/// Prints one figure row: modeled per-phase seconds + totals.
inline void PrintPhaseHeader() {
  std::printf("%4s  %12s  %10s  %10s  %11s  %9s  %12s  %12s  %6s\n", "P",
              "run_form_s", "select_s", "alltoall_s", "final_mrg_s",
              "total_s", "emul_wall_ms", "netbuf_KiB", "valid");
}

inline void PrintPhaseRow(int num_pes, const SortRunResult& run,
                          const sim::CostModel& model) {
  double phase_s[4];
  double total = 0;
  for (int p = 0; p < 4; ++p) {
    phase_s[p] =
        model
            .ClusterPhaseSeconds(static_cast<core::Phase>(p), run.reports)
            .total_s;
    total += phase_s[p];
  }
  std::printf(
      "%4d  %12.3f  %10.4f  %10.3f  %11.3f  %9.3f  %12.0f  %12.1f  %6s\n",
      num_pes, phase_s[0], phase_s[1], phase_s[2], phase_s[3], total,
      run.wall_ms, static_cast<double>(PeakNetBufferBytes(run)) / 1024.0,
      run.valid ? "yes" : "NO");
}

/// Standard weak-scaling PE list (paper: 1..64), trimmed by --max-pes.
inline std::vector<int> PeSweep(const FlagParser& flags,
                                int default_max = 64) {
  int max_pes = static_cast<int>(flags.GetInt("max-pes", default_max));
  std::vector<int> pes;
  for (int p = 1; p <= max_pes; p *= 2) pes.push_back(p);
  return pes;
}

}  // namespace demsort::bench

#endif  // DEMSORT_BENCH_BENCH_UTIL_H_
