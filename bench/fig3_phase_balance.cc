// Figure 3 reproduction: per-PE running times of every phase on a 32-node
// run with random input — wall clock vs pure-I/O time per PE.
//
// Paper shape: all phases well balanced across PEs (small variance, only
// disk-speed spread); the final merge is fully I/O-bound (no gap between
// I/O time and wall time); run formation shows a "grey gap" (not fully
// I/O-bound: the cooperative sort + communication exceeds the overlapped
// I/O).
#include <cstdio>

#include "bench_util.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace demsort;
  FlagParser flags(argc, argv);
  int num_pes = static_cast<int>(flags.GetInt("pes", 32));
  uint64_t elements_per_pe = static_cast<uint64_t>(
      flags.GetInt("elements-per-pe", (2 << 20) / 16));
  core::SortConfig config = bench::FigureConfig(
      static_cast<size_t>(flags.GetInt("block-size", 4 * 1024)));

  bench::SortRunResult run = bench::RunCanonical(
      num_pes, workload::Distribution::kUniform, config, elements_per_pe);
  sim::CostModel model;

  std::printf(
      "# Fig. 3 — per-PE phase times, %d PEs, random input (valid=%s)\n"
      "# For each phase: modeled wall seconds and modeled I/O seconds per "
      "PE.\n"
      "# A wall > io gap means the phase is not fully I/O-bound (paper: "
      "run formation).\n",
      num_pes, run.valid ? "yes" : "NO");
  std::printf("%4s", "PE");
  for (int ph = 0; ph < 4; ++ph) {
    std::printf("  %11s_w %11s_io", core::PhaseName(static_cast<core::Phase>(ph)),
                "");
  }
  std::printf("\n");
  for (int pe = 0; pe < num_pes; ++pe) {
    std::printf("%4d", pe);
    for (int ph = 0; ph < 4; ++ph) {
      sim::PhaseTime t = model.PhaseSeconds(
          static_cast<core::Phase>(ph),
          run.reports[pe].Get(static_cast<core::Phase>(ph)), num_pes);
      std::printf("  %13.4f %13.4f", t.total_s, t.io_s);
    }
    std::printf("\n");
  }

  // Balance summary (the point of the figure).
  for (int ph = 0; ph < 4; ++ph) {
    Summary wall;
    for (int pe = 0; pe < num_pes; ++pe) {
      wall.Add(model
                   .PhaseSeconds(static_cast<core::Phase>(ph),
                                 run.reports[pe].Get(
                                     static_cast<core::Phase>(ph)),
                                 num_pes)
                   .total_s);
    }
    std::printf("# %-20s imbalance max/mean = %.3f\n",
                core::PhaseName(static_cast<core::Phase>(ph)),
                wall.imbalance());
  }
  return 0;
}
