// Ablation: block size B under worst-case input with randomization — the
// trade-off behind Fig. 5's B=8 MiB vs B=2 MiB series and the Appendix C
// remark that "on large machines, it might pay to use a smaller block size
// for reading blocks during run formation". Smaller B shrinks the residual
// all-to-all movement (~sqrt(B)) but costs more seeks everywhere (the disk
// model's seek time is a physical constant, so more/smaller blocks mean
// worse raw I/O throughput).
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace demsort;
  FlagParser flags(argc, argv);
  int num_pes = static_cast<int>(flags.GetInt("pes", 8));
  uint64_t elements_per_pe = static_cast<uint64_t>(
      flags.GetInt("elements-per-pe", (2 << 20) / 16));

  sim::CostModel model;
  std::printf(
      "# Ablation — block size under worst-case randomized input, P=%d\n",
      num_pes);
  std::printf("%10s  %14s  %14s  %12s  %12s\n", "B_bytes", "alltoall_io/N",
              "io_seeks_total", "modeled_s", "emul_wall_ms");
  for (size_t block : {1024, 2048, 4096, 8192, 16384}) {
    core::SortConfig config = bench::FigureConfig(block);
    bench::SortRunResult run = bench::RunCanonical(
        num_pes, workload::Distribution::kWorstCaseLocal, config,
        elements_per_pe);
    uint64_t a2a_bytes = 0, seeks = 0;
    for (const auto& r : run.reports) {
      a2a_bytes += r.Get(core::Phase::kAllToAll).io.bytes();
      for (int p = 0; p < 4; ++p) seeks += r.phase[p].io.seeks;
    }
    double n_bytes = static_cast<double>(run.total_elements) *
                     sizeof(core::KV16);
    std::printf("%10zu  %14.4f  %14llu  %12.3f  %12.0f%s\n", block,
                a2a_bytes / n_bytes,
                static_cast<unsigned long long>(seeks),
                model.TotalSeconds(run.reports), run.wall_ms,
                run.valid ? "" : "  INVALID");
    std::fflush(stdout);
  }
  return 0;
}
