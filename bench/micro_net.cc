// Microbenchmarks of the message-passing substrate: point-to-point
// round-trips, barrier, allgather, and the 64-bit alltoallv — each measured
// over BOTH transports (in-process fabric mailboxes vs. real loopback TCP
// sockets), so the cost of leaving the address space is visible.
#include <benchmark/benchmark.h>

#include <functional>
#include <vector>

#include "net/cluster.h"
#include "net/comm.h"
#include "net/tcp_transport.h"

namespace {

using demsort::net::Cluster;
using demsort::net::Comm;
using demsort::net::TransportKind;

void RunWith(TransportKind kind, int pes,
             const std::function<void(Comm&)>& body) {
  Cluster::Options options;
  options.num_pes = pes;
  demsort::net::RunOverTransport(kind, options, body);
}

void PingPong(benchmark::State& state, TransportKind kind) {
  size_t bytes = state.range(0);
  for (auto _ : state) {
    RunWith(kind, 2, [&](Comm& comm) {
      std::vector<uint8_t> payload(bytes, 1);
      for (int i = 0; i < 100; ++i) {
        if (comm.rank() == 0) {
          comm.Send(1, 1, payload.data(), payload.size());
          comm.Recv(1, 2);
        } else {
          comm.Recv(0, 1);
          comm.Send(0, 2, payload.data(), payload.size());
        }
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * 200 * bytes);
}
BENCHMARK_CAPTURE(PingPong, inproc, TransportKind::kInProc)
    ->Arg(64)->Arg(4096)->Arg(1 << 20)->Iterations(10);
BENCHMARK_CAPTURE(PingPong, tcp, TransportKind::kTcp)
    ->Arg(64)->Arg(4096)->Arg(1 << 20)->Iterations(10);

void Barrier(benchmark::State& state, TransportKind kind) {
  int pes = state.range(0);
  for (auto _ : state) {
    RunWith(kind, pes, [](Comm& comm) {
      for (int i = 0; i < 50; ++i) comm.Barrier();
    });
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK_CAPTURE(Barrier, inproc, TransportKind::kInProc)
    ->Arg(2)->Arg(8)->Arg(32)->Iterations(10);
BENCHMARK_CAPTURE(Barrier, tcp, TransportKind::kTcp)
    ->Arg(2)->Arg(8)->Iterations(10);

/// The acceptance metric: Alltoallv throughput per transport.
void Alltoallv(benchmark::State& state, TransportKind kind) {
  int pes = state.range(0);
  size_t per_pair = 4096;
  for (auto _ : state) {
    RunWith(kind, pes, [&](Comm& comm) {
      std::vector<std::vector<uint64_t>> sends(comm.size());
      for (auto& s : sends) s.assign(per_pair / 8, comm.rank());
      for (int i = 0; i < 10; ++i) {
        auto recv = comm.Alltoallv<uint64_t>(sends);
        benchmark::DoNotOptimize(recv.size());
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * 10 * pes * pes * per_pair);
}
BENCHMARK_CAPTURE(Alltoallv, inproc, TransportKind::kInProc)
    ->Arg(2)->Arg(8)->Arg(16)->Iterations(10);
BENCHMARK_CAPTURE(Alltoallv, tcp, TransportKind::kTcp)
    ->Arg(2)->Arg(8)->Arg(16)->Iterations(10);

/// Bulk single-pair bandwidth: one 64 MiB message each way.
void Bandwidth(benchmark::State& state, TransportKind kind) {
  const size_t bytes = 64u << 20;
  for (auto _ : state) {
    RunWith(kind, 2, [&](Comm& comm) {
      std::vector<uint8_t> payload(bytes, 2);
      if (comm.rank() == 0) {
        comm.Send(1, 1, payload.data(), payload.size());
        comm.Recv(1, 2);
      } else {
        comm.Recv(0, 1);
        comm.Send(0, 2, payload.data(), payload.size());
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * 2 * bytes);
}
BENCHMARK_CAPTURE(Bandwidth, inproc, TransportKind::kInProc)->Iterations(5);
BENCHMARK_CAPTURE(Bandwidth, tcp, TransportKind::kTcp)->Iterations(5);

}  // namespace
