// Microbenchmarks of the message-passing substrate: point-to-point
// round-trips, barrier, allgather, and the 64-bit alltoallv — each measured
// over BOTH transports (in-process fabric mailboxes vs. real loopback TCP
// sockets), so the cost of leaving the address space is visible.
//
// The AlltoallvMode family compares the three exchange schedules head to
// head on the in-process fabric — throughput AND peak receive-side
// buffering (the peak_netbuf_B counter):
//   buffered  — Comm::Alltoallv full mesh (every PE buffers P-1 payloads)
//   stream    — Comm::AlltoallvStream chunked delivery (O(chunk x sources))
//   pairwise  — Comm::AlltoallvPairwise rounds (one payload in flight)
// Run one mode only with --alltoallv-mode={buffered,stream,pairwise}.
//
// The StreamTuning family A/Bs the streaming collective's credit protocol
// and chunk controller (msgs_per_record, ctrl_msgs, piggy_credits,
// converged_chunk_B columns); filter with --credit-mode={standalone,
// piggyback} and/or --chunk-mode={fixed,adaptive}. `--credit-compare` is
// the self-checking CI smoke: it runs standalone vs piggyback at P=8 and
// exits nonzero unless piggybacking cuts control messages by >= 40% and
// total messages strictly; add --snapshot=FILE to write the measurements
// as JSON (the machine-readable perf trajectory, see bench/run_bench.sh).
//
// `--topo-compare` is the hierarchy smoke: the same streamed exchange over
// the same 2-PEs-per-node machine with flat vs two-level collective
// schedules — it exits nonzero unless the two-level schedule puts strictly
// fewer messages on the node uplinks and the cross-node connection count
// is the node mesh N*(N-1) rather than the flat P*(P-1). Also honors
// --snapshot=FILE.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "net/cluster.h"
#include "net/comm.h"
#include "net/hierarchical_transport.h"
#include "net/tcp_transport.h"
#include "net/topology.h"
#include "util/timer.h"

namespace {

using demsort::net::AlltoallAlgo;
using demsort::net::Cluster;
using demsort::net::Comm;
using demsort::net::HierCluster;
using demsort::net::NetStatsSnapshot;
using demsort::net::StreamChunkMode;
using demsort::net::StreamCreditMode;
using demsort::net::StreamOptions;
using demsort::net::Topology;
using demsort::net::TransportKind;

void RunWith(TransportKind kind, int pes,
             const std::function<void(Comm&)>& body) {
  Cluster::Options options;
  options.num_pes = pes;
  demsort::net::RunOverTransport(kind, options, body);
}

void PingPong(benchmark::State& state, TransportKind kind) {
  size_t bytes = state.range(0);
  for (auto _ : state) {
    RunWith(kind, 2, [&](Comm& comm) {
      std::vector<uint8_t> payload(bytes, 1);
      for (int i = 0; i < 100; ++i) {
        if (comm.rank() == 0) {
          comm.Send(1, 1, payload.data(), payload.size());
          comm.Recv(1, 2);
        } else {
          comm.Recv(0, 1);
          comm.Send(0, 2, payload.data(), payload.size());
        }
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * 200 * bytes);
}
BENCHMARK_CAPTURE(PingPong, inproc, TransportKind::kInProc)
    ->Arg(64)->Arg(4096)->Arg(1 << 20)->Iterations(10);
BENCHMARK_CAPTURE(PingPong, tcp, TransportKind::kTcp)
    ->Arg(64)->Arg(4096)->Arg(1 << 20)->Iterations(10);

void Barrier(benchmark::State& state, TransportKind kind) {
  int pes = state.range(0);
  for (auto _ : state) {
    RunWith(kind, pes, [](Comm& comm) {
      for (int i = 0; i < 50; ++i) comm.Barrier();
    });
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK_CAPTURE(Barrier, inproc, TransportKind::kInProc)
    ->Arg(2)->Arg(8)->Arg(32)->Iterations(10);
BENCHMARK_CAPTURE(Barrier, tcp, TransportKind::kTcp)
    ->Arg(2)->Arg(8)->Iterations(10);

/// The acceptance metric: Alltoallv throughput per transport.
void Alltoallv(benchmark::State& state, TransportKind kind) {
  int pes = state.range(0);
  size_t per_pair = 4096;
  for (auto _ : state) {
    RunWith(kind, pes, [&](Comm& comm) {
      std::vector<std::vector<uint64_t>> sends(comm.size());
      for (auto& s : sends) s.assign(per_pair / 8, comm.rank());
      for (int i = 0; i < 10; ++i) {
        auto recv = comm.Alltoallv<uint64_t>(sends);
        benchmark::DoNotOptimize(recv.size());
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * 10 * pes * pes * per_pair);
}
BENCHMARK_CAPTURE(Alltoallv, inproc, TransportKind::kInProc)
    ->Arg(2)->Arg(8)->Arg(16)->Iterations(10);
BENCHMARK_CAPTURE(Alltoallv, tcp, TransportKind::kTcp)
    ->Arg(2)->Arg(8)->Arg(16)->Iterations(10);

/// The three exchange schedules, same payload, same fabric: throughput via
/// SetBytesProcessed, peak receive-side transport buffering via the
/// peak_netbuf_B counter. The streamed mode's peak stays O(chunk x
/// sources) while the buffered full mesh parks whole payloads per source.
void AlltoallvMode(benchmark::State& state, const std::string& mode) {
  const int pes = static_cast<int>(state.range(0));
  const size_t per_pair = static_cast<size_t>(state.range(1));
  const size_t chunk = 16 << 10;
  const int reps = 5;
  uint64_t peak_netbuf = 0;
  for (auto _ : state) {
    Cluster::Options options;
    options.num_pes = pes;
    Cluster::Result result = Cluster::Run(options, [&](Comm& comm) {
      std::vector<std::vector<uint64_t>> sends(comm.size());
      for (int d = 0; d < comm.size(); ++d) {
        sends[d].assign(per_pair / 8, comm.rank() * 1000 + d);
      }
      for (int i = 0; i < reps; ++i) {
        if (mode == "stream") {
          uint64_t received_bytes = 0;
          comm.AlltoallvStream(
              [&](int dst) {
                return std::span<const uint8_t>(
                    reinterpret_cast<const uint8_t*>(sends[dst].data()),
                    sends[dst].size() * sizeof(uint64_t));
              },
              [&](int src, std::span<const uint8_t> data, bool last) {
                (void)src;
                (void)last;
                received_bytes += data.size();
              },
              /*on_size=*/nullptr, chunk);
          benchmark::DoNotOptimize(received_bytes);
        } else {
          comm.set_alltoallv_algo(mode == "pairwise"
                                      ? AlltoallAlgo::kPairwise
                                      : AlltoallAlgo::kFullMesh);
          auto recv = comm.Alltoallv<uint64_t>(sends);
          benchmark::DoNotOptimize(recv.size());
        }
      }
    });
    for (const auto& s : result.stats) {
      peak_netbuf = std::max(peak_netbuf, s.recv_buffer_peak_bytes);
    }
  }
  state.counters["peak_netbuf_B"] = static_cast<double>(peak_netbuf);
  state.SetBytesProcessed(state.iterations() * reps * pes *
                          (pes - 1) * per_pair);
}
BENCHMARK_CAPTURE(AlltoallvMode, buffered, "buffered")
    ->Args({4, 256 << 10})->Args({8, 256 << 10})->Iterations(5);
BENCHMARK_CAPTURE(AlltoallvMode, stream, "stream")
    ->Args({4, 256 << 10})->Args({8, 256 << 10})->Iterations(5);
BENCHMARK_CAPTURE(AlltoallvMode, pairwise, "pairwise")
    ->Args({4, 256 << 10})->Args({8, 256 << 10})->Iterations(5);

// ------------------------------------------------- stream tuning A/B ----

struct StreamModeStats {
  uint64_t total_msgs = 0;
  uint64_t credit_msgs = 0;
  uint64_t piggybacked_credits = 0;
  uint64_t peak_netbuf = 0;
  uint64_t converged_chunk = 0;
  uint64_t records = 0;
  double seconds = 0;
};

/// One streamed exchange workload at fixed parameters, on the in-process
/// fabric, under the given credit/chunk modes. Used by both the benchmark
/// family and the self-checking --credit-compare smoke.
StreamModeStats RunStreamExchange(int pes, size_t per_pair, size_t chunk,
                                  StreamCreditMode credit_mode,
                                  StreamChunkMode chunk_mode, int reps) {
  Cluster::Options options;
  options.num_pes = pes;
  int64_t t0 = demsort::NowNanos();
  Cluster::Result result = Cluster::Run(options, [&](Comm& comm) {
    std::vector<std::vector<uint64_t>> sends(comm.size());
    for (int d = 0; d < comm.size(); ++d) {
      sends[d].assign(per_pair / 8, comm.rank() * 1000 + d);
    }
    std::vector<std::span<const uint8_t>> spans(comm.size());
    for (int d = 0; d < comm.size(); ++d) {
      spans[d] = std::span<const uint8_t>(
          reinterpret_cast<const uint8_t*>(sends[d].data()),
          sends[d].size() * sizeof(uint64_t));
    }
    StreamOptions sopts;
    sopts.chunk_bytes = chunk;
    sopts.align_bytes = sizeof(uint64_t);
    sopts.credit_mode = credit_mode;
    sopts.chunk_mode = chunk_mode;
    for (int i = 0; i < reps; ++i) {
      uint64_t received = 0;
      comm.AlltoallvStream(
          spans,
          [&](int, std::span<const uint8_t> data, bool) {
            received += data.size();
          },
          nullptr, sopts);
      benchmark::DoNotOptimize(received);
    }
  });
  StreamModeStats s;
  s.seconds = (demsort::NowNanos() - t0) * 1e-9;
  for (const auto& pe : result.stats) {
    s.total_msgs += pe.messages_sent;
    s.credit_msgs += pe.credit_msgs;
    s.piggybacked_credits += pe.piggybacked_credits;
    s.peak_netbuf = std::max(s.peak_netbuf, pe.recv_buffer_peak_bytes);
    s.converged_chunk = std::max(s.converged_chunk, pe.stream_chunk_bytes);
  }
  s.records = static_cast<uint64_t>(reps) * pes * (pes - 1) * (per_pair / 8);
  return s;
}

/// Credit-protocol x chunk-controller comparison columns: messages per
/// record (the per-chunk overhead the tuning exists to shave), standalone
/// control messages vs piggybacked credits, and the converged chunk size.
void StreamTuning(benchmark::State& state, StreamCreditMode credit_mode,
                  StreamChunkMode chunk_mode) {
  const int pes = static_cast<int>(state.range(0));
  const size_t per_pair = static_cast<size_t>(state.range(1));
  const size_t chunk = 16 << 10;
  const int reps = 5;
  StreamModeStats last;
  for (auto _ : state) {
    last = RunStreamExchange(pes, per_pair, chunk, credit_mode, chunk_mode,
                             reps);
  }
  state.counters["msgs_per_record"] =
      static_cast<double>(last.total_msgs) /
      static_cast<double>(last.records);
  state.counters["ctrl_msgs"] = static_cast<double>(last.credit_msgs);
  state.counters["piggy_credits"] =
      static_cast<double>(last.piggybacked_credits);
  state.counters["converged_chunk_B"] =
      static_cast<double>(last.converged_chunk);
  state.counters["peak_netbuf_B"] = static_cast<double>(last.peak_netbuf);
  state.SetBytesProcessed(state.iterations() * reps * pes * (pes - 1) *
                          per_pair);
}
BENCHMARK_CAPTURE(StreamTuning, standalone_fixed,
                  StreamCreditMode::kStandalone, StreamChunkMode::kFixed)
    ->Args({8, 256 << 10})->Iterations(3);
BENCHMARK_CAPTURE(StreamTuning, piggyback_fixed,
                  StreamCreditMode::kPiggyback, StreamChunkMode::kFixed)
    ->Args({8, 256 << 10})->Iterations(3);
BENCHMARK_CAPTURE(StreamTuning, standalone_adaptive,
                  StreamCreditMode::kStandalone, StreamChunkMode::kAdaptive)
    ->Args({8, 256 << 10})->Iterations(3);
BENCHMARK_CAPTURE(StreamTuning, piggyback_adaptive,
                  StreamCreditMode::kPiggyback, StreamChunkMode::kAdaptive)
    ->Args({8, 256 << 10})->Iterations(3);

/// Bulk single-pair bandwidth: one 64 MiB message each way.
void Bandwidth(benchmark::State& state, TransportKind kind) {
  const size_t bytes = 64u << 20;
  for (auto _ : state) {
    RunWith(kind, 2, [&](Comm& comm) {
      std::vector<uint8_t> payload(bytes, 2);
      if (comm.rank() == 0) {
        comm.Send(1, 1, payload.data(), payload.size());
        comm.Recv(1, 2);
      } else {
        comm.Recv(0, 1);
        comm.Send(0, 2, payload.data(), payload.size());
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * 2 * bytes);
}
BENCHMARK_CAPTURE(Bandwidth, inproc, TransportKind::kInProc)->Iterations(5);
BENCHMARK_CAPTURE(Bandwidth, tcp, TransportKind::kTcp)->Iterations(5);

void PrintStreamMode(const char* name, const StreamModeStats& s) {
  std::printf("%-20s  %10llu  %10llu  %13llu  %14llu  %16llu  %8.3f\n", name,
              static_cast<unsigned long long>(s.total_msgs),
              static_cast<unsigned long long>(s.credit_msgs),
              static_cast<unsigned long long>(s.piggybacked_credits),
              static_cast<unsigned long long>(s.converged_chunk),
              static_cast<unsigned long long>(s.peak_netbuf), s.seconds);
}

void WriteSnapshotMode(std::FILE* f, const char* name,
                       const StreamModeStats& s, bool last) {
  std::fprintf(f,
               "    \"%s\": {\"total_msgs\": %llu, \"credit_msgs\": %llu, "
               "\"piggybacked_credits\": %llu, \"converged_chunk_bytes\": "
               "%llu, \"peak_netbuf_bytes\": %llu, \"seconds\": %.6f}%s\n",
               name, static_cast<unsigned long long>(s.total_msgs),
               static_cast<unsigned long long>(s.credit_msgs),
               static_cast<unsigned long long>(s.piggybacked_credits),
               static_cast<unsigned long long>(s.converged_chunk),
               static_cast<unsigned long long>(s.peak_netbuf), s.seconds,
               last ? "" : ",");
}

/// The self-checking credit-protocol smoke (CI runs this in Release):
/// piggybacking must cut standalone control messages by >= 40% AND send
/// strictly fewer messages overall than the standalone protocol at P = 8.
/// With --snapshot=FILE the measurements (plus an adaptive-mode run) are
/// written as JSON for the machine-readable perf trajectory.
int RunCreditCompare(const std::string& snapshot_path) {
  const int pes = 8;
  const size_t per_pair = 256 << 10;
  const size_t chunk = 16 << 10;
  const int reps = 5;
  StreamModeStats standalone = RunStreamExchange(
      pes, per_pair, chunk, StreamCreditMode::kStandalone,
      StreamChunkMode::kFixed, reps);
  StreamModeStats piggyback = RunStreamExchange(
      pes, per_pair, chunk, StreamCreditMode::kPiggyback,
      StreamChunkMode::kFixed, reps);
  StreamModeStats adaptive = RunStreamExchange(
      pes, per_pair, chunk, StreamCreditMode::kPiggyback,
      StreamChunkMode::kAdaptive, reps);

  std::printf(
      "stream credit/chunk comparison: P=%d, %zu B/pair, %zu B chunks, "
      "%d reps\n",
      pes, per_pair, chunk, reps);
  std::printf("%-20s  %10s  %10s  %13s  %14s  %16s  %8s\n", "mode",
              "total_msgs", "ctrl_msgs", "piggy_credits", "chunk_B",
              "peak_netbuf_B", "sec");
  PrintStreamMode("standalone_fixed", standalone);
  PrintStreamMode("piggyback_fixed", piggyback);
  PrintStreamMode("piggyback_adaptive", adaptive);

  double reduction =
      standalone.credit_msgs == 0
          ? 0.0
          : 1.0 - static_cast<double>(piggyback.credit_msgs) /
                      static_cast<double>(standalone.credit_msgs);
  std::printf("control-message reduction: %.1f%% (requirement: >= 40%%)\n",
              reduction * 100.0);

  if (!snapshot_path.empty()) {
    std::FILE* f = std::fopen(snapshot_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", snapshot_path.c_str());
      return 2;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"micro_net_stream\",\n  \"pes\": %d,\n"
                 "  \"per_pair_bytes\": %zu,\n  \"chunk_bytes\": %zu,\n"
                 "  \"reps\": %d,\n  \"modes\": {\n",
                 pes, per_pair, chunk, reps);
    WriteSnapshotMode(f, "standalone_fixed", standalone, false);
    WriteSnapshotMode(f, "piggyback_fixed", piggyback, false);
    WriteSnapshotMode(f, "piggyback_adaptive", adaptive, true);
    std::fprintf(f, "  },\n  \"control_msg_reduction\": %.4f\n}\n",
                 reduction);
    std::fclose(f);
  }

  bool pass = reduction >= 0.40 && piggyback.total_msgs < standalone.total_msgs;
  std::printf("credit-compare: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

// --------------------------------------------------- topology compare ----

struct TopoModeStats {
  uint64_t total_msgs = 0;
  uint64_t inter_msgs = 0;
  uint64_t inter_bytes = 0;
  uint64_t intra_bytes = 0;
  uint64_t uplink_msgs = 0;
  uint64_t pool_leases = 0;
  uint64_t pool_hits = 0;
  double seconds = 0;
};

/// The streamed exchange over the SAME physical hierarchy, with either the
/// flat collective schedules (every cross-node pair streams through the
/// uplink independently) or the two-level schedules (node-local pack,
/// leader-to-leader rounds, local scatter).
TopoModeStats RunTopoExchange(const Topology& topo, bool flat_collectives,
                              size_t per_pair, size_t chunk, int reps) {
  HierCluster::Options options;
  options.topology = topo;
  options.flat_collectives = flat_collectives;
  int64_t t0 = demsort::NowNanos();
  HierCluster::Result result = HierCluster::Run(options, [&](Comm& comm) {
    std::vector<std::vector<uint64_t>> sends(comm.size());
    for (int d = 0; d < comm.size(); ++d) {
      sends[d].assign(per_pair / 8, comm.rank() * 1000 + d);
    }
    std::vector<std::span<const uint8_t>> spans(comm.size());
    for (int d = 0; d < comm.size(); ++d) {
      spans[d] = std::span<const uint8_t>(
          reinterpret_cast<const uint8_t*>(sends[d].data()),
          sends[d].size() * sizeof(uint64_t));
    }
    StreamOptions sopts;
    sopts.chunk_bytes = chunk;
    sopts.align_bytes = sizeof(uint64_t);
    sopts.chunk_mode = StreamChunkMode::kFixed;
    for (int i = 0; i < reps; ++i) {
      uint64_t received = 0;
      comm.AlltoallvStream(
          spans,
          [&](int, std::span<const uint8_t> data, bool) {
            received += data.size();
          },
          nullptr, sopts);
      benchmark::DoNotOptimize(received);
    }
  });
  TopoModeStats s;
  s.seconds = (demsort::NowNanos() - t0) * 1e-9;
  for (const NetStatsSnapshot& pe : result.stats) {
    s.total_msgs += pe.messages_sent;
    s.inter_msgs += pe.inter_node_msgs;
    s.inter_bytes += pe.inter_node_bytes;
    s.intra_bytes += pe.intra_node_bytes;
    s.pool_leases += pe.pool_leases;
    s.pool_hits += pe.pool_hits;
  }
  s.uplink_msgs = result.uplink_total.messages_sent;
  return s;
}

void PrintTopoMode(const char* name, const TopoModeStats& s) {
  std::printf("%-12s  %10llu  %11llu  %13.1f  %13.1f  %11llu  %9.1f  %8.3f\n",
              name, static_cast<unsigned long long>(s.total_msgs),
              static_cast<unsigned long long>(s.inter_msgs),
              static_cast<double>(s.inter_bytes) / (1 << 20),
              static_cast<double>(s.intra_bytes) / (1 << 20),
              static_cast<unsigned long long>(s.uplink_msgs),
              100.0 * static_cast<double>(s.pool_hits) /
                  static_cast<double>(std::max<uint64_t>(s.pool_leases, 1)),
              s.seconds);
}

/// The self-checking hierarchy smoke (CI runs this in Release): at P = 8
/// with 2 PEs/node the two-level schedule must put strictly fewer
/// messages on the node uplinks than the flat pairwise schedule over the
/// same hierarchy, the cross-node connection arithmetic must be the node
/// mesh N*(N-1), not the flat P*(P-1) — AND the uplink win must not be
/// bought with time or local copies: two-level wall time must stay within
/// 1.25x of flat and its intra-node volume under 2x flat's (the zero-copy
/// leader data path pays for the hierarchy).
int RunTopoCompare(const std::string& snapshot_path) {
  const int pes = 8;
  const int per_node = 2;
  const size_t per_pair = 256 << 10;
  const size_t chunk = 16 << 10;
  const int reps = 5;
  Topology topo = Topology::Uniform(pes, per_node);

  TopoModeStats flat = RunTopoExchange(topo, /*flat_collectives=*/true,
                                       per_pair, chunk, reps);
  TopoModeStats hier = RunTopoExchange(topo, /*flat_collectives=*/false,
                                       per_pair, chunk, reps);

  const uint64_t flat_links = Topology::FlatConnections(pes);
  const uint64_t hier_links = topo.InterNodeConnections();
  std::printf(
      "topology comparison: P=%d, %d PEs/node (%d nodes), %zu B/pair, "
      "%zu B chunks, %d reps\n",
      pes, per_node, topo.num_nodes(), per_pair, chunk, reps);
  std::printf("%-12s  %10s  %11s  %13s  %13s  %11s  %9s  %8s\n", "schedule",
              "total_msgs", "inter_msgs", "inter_MiB", "intra_MiB",
              "uplink_msgs", "pool_hit%", "sec");
  PrintTopoMode("flat", flat);
  PrintTopoMode("two-level", hier);
  std::printf(
      "inter-node connections: hier %llu (= N*(N-1)) vs flat %llu "
      "(= P*(P-1))\n",
      static_cast<unsigned long long>(hier_links),
      static_cast<unsigned long long>(flat_links));

  if (!snapshot_path.empty()) {
    std::FILE* f = std::fopen(snapshot_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", snapshot_path.c_str());
      return 2;
    }
    auto write_mode = [f](const char* name, const TopoModeStats& s,
                          bool last) {
      std::fprintf(f,
                   "    \"%s\": {\"total_msgs\": %llu, \"inter_msgs\": %llu, "
                   "\"inter_bytes\": %llu, \"intra_bytes\": %llu, "
                   "\"uplink_msgs\": %llu, \"pool_leases\": %llu, "
                   "\"pool_hits\": %llu, \"seconds\": %.6f}%s\n",
                   name, static_cast<unsigned long long>(s.total_msgs),
                   static_cast<unsigned long long>(s.inter_msgs),
                   static_cast<unsigned long long>(s.inter_bytes),
                   static_cast<unsigned long long>(s.intra_bytes),
                   static_cast<unsigned long long>(s.uplink_msgs),
                   static_cast<unsigned long long>(s.pool_leases),
                   static_cast<unsigned long long>(s.pool_hits), s.seconds,
                   last ? "" : ",");
    };
    std::fprintf(f,
                 "{\n  \"bench\": \"micro_net_topo\",\n  \"pes\": %d,\n"
                 "  \"pes_per_node\": %d,\n  \"per_pair_bytes\": %zu,\n"
                 "  \"chunk_bytes\": %zu,\n  \"reps\": %d,\n"
                 "  \"inter_node_connections\": %llu,\n"
                 "  \"flat_connections\": %llu,\n  \"modes\": {\n",
                 pes, per_node, per_pair, chunk, reps,
                 static_cast<unsigned long long>(hier_links),
                 static_cast<unsigned long long>(flat_links));
    write_mode("flat", flat, false);
    write_mode("two_level", hier, true);
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
  }

  const double wall_ratio = hier.seconds / flat.seconds;
  const double intra_ratio = static_cast<double>(hier.intra_bytes) /
                             static_cast<double>(flat.intra_bytes);
  std::printf(
      "two-level/flat ratios: wall %.2fx (must be <= 1.25), intra bytes "
      "%.2fx (must be < 2)\n",
      wall_ratio, intra_ratio);
  const bool pass = hier_links == static_cast<uint64_t>(topo.num_nodes()) *
                                      (topo.num_nodes() - 1) &&
                    hier_links < flat_links &&
                    hier.inter_msgs < flat.inter_msgs &&
                    hier.uplink_msgs < flat.uplink_msgs &&
                    wall_ratio <= 1.25 && intra_ratio < 2.0;
  std::printf("topo-compare: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace

/// Custom main (overrides benchmark_main's): --alltoallv-mode=<mode> runs
/// only that schedule's comparison benchmark; --credit-mode= / --chunk-mode=
/// filter the StreamTuning family; --credit-compare runs the self-checking
/// piggyback-vs-standalone smoke (optionally --snapshot=FILE for JSON) and
/// exits. All other flags pass through to Google Benchmark.
int main(int argc, char** argv) {
  std::vector<char*> args;
  std::string filter_arg;
  std::string credit_mode, chunk_mode, snapshot;
  bool credit_compare = false;
  bool topo_compare = false;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    const std::string a2a_prefix = "--alltoallv-mode=";
    const std::string credit_prefix = "--credit-mode=";
    const std::string chunk_prefix = "--chunk-mode=";
    const std::string snapshot_prefix = "--snapshot=";
    if (arg.rfind(a2a_prefix, 0) == 0) {
      std::string mode = arg.substr(a2a_prefix.size());
      if (mode != "buffered" && mode != "stream" && mode != "pairwise") {
        std::fprintf(stderr,
                     "unknown --alltoallv-mode '%s' "
                     "(expected buffered|stream|pairwise)\n",
                     mode.c_str());
        return 2;
      }
      filter_arg = "--benchmark_filter=AlltoallvMode/" + mode;
    } else if (arg.rfind(credit_prefix, 0) == 0) {
      credit_mode = arg.substr(credit_prefix.size());
      if (credit_mode != "standalone" && credit_mode != "piggyback") {
        std::fprintf(stderr,
                     "unknown --credit-mode '%s' "
                     "(expected standalone|piggyback)\n",
                     credit_mode.c_str());
        return 2;
      }
    } else if (arg.rfind(chunk_prefix, 0) == 0) {
      chunk_mode = arg.substr(chunk_prefix.size());
      if (chunk_mode != "fixed" && chunk_mode != "adaptive") {
        std::fprintf(stderr,
                     "unknown --chunk-mode '%s' (expected fixed|adaptive)\n",
                     chunk_mode.c_str());
        return 2;
      }
    } else if (arg.rfind(snapshot_prefix, 0) == 0) {
      snapshot = arg.substr(snapshot_prefix.size());
    } else if (arg == "--credit-compare") {
      credit_compare = true;
    } else if (arg == "--topo-compare") {
      topo_compare = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (credit_compare) return RunCreditCompare(snapshot);
  if (topo_compare) return RunTopoCompare(snapshot);
  if (!credit_mode.empty() || !chunk_mode.empty()) {
    filter_arg = "--benchmark_filter=StreamTuning/" +
                 (credit_mode.empty() ? std::string(".*") : credit_mode) +
                 "_" + (chunk_mode.empty() ? std::string(".*") : chunk_mode);
  }
  if (!filter_arg.empty()) args.push_back(filter_arg.data());
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
