// Microbenchmarks of the message-passing substrate: point-to-point
// round-trips, barrier, allgather, and the 64-bit alltoallv.
#include <benchmark/benchmark.h>

#include <vector>

#include "net/cluster.h"
#include "net/comm.h"

namespace {

using demsort::net::Cluster;
using demsort::net::Comm;

void BM_PingPong(benchmark::State& state) {
  size_t bytes = state.range(0);
  for (auto _ : state) {
    Cluster::Run(2, [&](Comm& comm) {
      std::vector<uint8_t> payload(bytes, 1);
      for (int i = 0; i < 100; ++i) {
        if (comm.rank() == 0) {
          comm.Send(1, 1, payload.data(), payload.size());
          comm.Recv(1, 2);
        } else {
          comm.Recv(0, 1);
          comm.Send(0, 2, payload.data(), payload.size());
        }
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * 200 * bytes);
}
BENCHMARK(BM_PingPong)->Arg(64)->Arg(4096)->Arg(1 << 20)->Iterations(10);

void BM_Barrier(benchmark::State& state) {
  int pes = state.range(0);
  for (auto _ : state) {
    Cluster::Run(pes, [](Comm& comm) {
      for (int i = 0; i < 50; ++i) comm.Barrier();
    });
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_Barrier)->Arg(2)->Arg(8)->Arg(32)->Iterations(10);

void BM_Alltoallv(benchmark::State& state) {
  int pes = state.range(0);
  size_t per_pair = 4096;
  for (auto _ : state) {
    Cluster::Run(pes, [&](Comm& comm) {
      std::vector<std::vector<uint64_t>> sends(comm.size());
      for (auto& s : sends) s.assign(per_pair / 8, comm.rank());
      for (int i = 0; i < 10; ++i) {
        auto recv = comm.Alltoallv<uint64_t>(sends);
        benchmark::DoNotOptimize(recv.size());
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * 10 * pes * pes * per_pair);
}
BENCHMARK(BM_Alltoallv)->Arg(2)->Arg(8)->Arg(16)->Iterations(10);

}  // namespace

