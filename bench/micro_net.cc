// Microbenchmarks of the message-passing substrate: point-to-point
// round-trips, barrier, allgather, and the 64-bit alltoallv — each measured
// over BOTH transports (in-process fabric mailboxes vs. real loopback TCP
// sockets), so the cost of leaving the address space is visible.
//
// The AlltoallvMode family compares the three exchange schedules head to
// head on the in-process fabric — throughput AND peak receive-side
// buffering (the peak_netbuf_B counter):
//   buffered  — Comm::Alltoallv full mesh (every PE buffers P-1 payloads)
//   stream    — Comm::AlltoallvStream chunked delivery (O(chunk x sources))
//   pairwise  — Comm::AlltoallvPairwise rounds (one payload in flight)
// Run one mode only with --alltoallv-mode={buffered,stream,pairwise}.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "net/cluster.h"
#include "net/comm.h"
#include "net/tcp_transport.h"

namespace {

using demsort::net::AlltoallAlgo;
using demsort::net::Cluster;
using demsort::net::Comm;
using demsort::net::TransportKind;

void RunWith(TransportKind kind, int pes,
             const std::function<void(Comm&)>& body) {
  Cluster::Options options;
  options.num_pes = pes;
  demsort::net::RunOverTransport(kind, options, body);
}

void PingPong(benchmark::State& state, TransportKind kind) {
  size_t bytes = state.range(0);
  for (auto _ : state) {
    RunWith(kind, 2, [&](Comm& comm) {
      std::vector<uint8_t> payload(bytes, 1);
      for (int i = 0; i < 100; ++i) {
        if (comm.rank() == 0) {
          comm.Send(1, 1, payload.data(), payload.size());
          comm.Recv(1, 2);
        } else {
          comm.Recv(0, 1);
          comm.Send(0, 2, payload.data(), payload.size());
        }
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * 200 * bytes);
}
BENCHMARK_CAPTURE(PingPong, inproc, TransportKind::kInProc)
    ->Arg(64)->Arg(4096)->Arg(1 << 20)->Iterations(10);
BENCHMARK_CAPTURE(PingPong, tcp, TransportKind::kTcp)
    ->Arg(64)->Arg(4096)->Arg(1 << 20)->Iterations(10);

void Barrier(benchmark::State& state, TransportKind kind) {
  int pes = state.range(0);
  for (auto _ : state) {
    RunWith(kind, pes, [](Comm& comm) {
      for (int i = 0; i < 50; ++i) comm.Barrier();
    });
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK_CAPTURE(Barrier, inproc, TransportKind::kInProc)
    ->Arg(2)->Arg(8)->Arg(32)->Iterations(10);
BENCHMARK_CAPTURE(Barrier, tcp, TransportKind::kTcp)
    ->Arg(2)->Arg(8)->Iterations(10);

/// The acceptance metric: Alltoallv throughput per transport.
void Alltoallv(benchmark::State& state, TransportKind kind) {
  int pes = state.range(0);
  size_t per_pair = 4096;
  for (auto _ : state) {
    RunWith(kind, pes, [&](Comm& comm) {
      std::vector<std::vector<uint64_t>> sends(comm.size());
      for (auto& s : sends) s.assign(per_pair / 8, comm.rank());
      for (int i = 0; i < 10; ++i) {
        auto recv = comm.Alltoallv<uint64_t>(sends);
        benchmark::DoNotOptimize(recv.size());
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * 10 * pes * pes * per_pair);
}
BENCHMARK_CAPTURE(Alltoallv, inproc, TransportKind::kInProc)
    ->Arg(2)->Arg(8)->Arg(16)->Iterations(10);
BENCHMARK_CAPTURE(Alltoallv, tcp, TransportKind::kTcp)
    ->Arg(2)->Arg(8)->Arg(16)->Iterations(10);

/// The three exchange schedules, same payload, same fabric: throughput via
/// SetBytesProcessed, peak receive-side transport buffering via the
/// peak_netbuf_B counter. The streamed mode's peak stays O(chunk x
/// sources) while the buffered full mesh parks whole payloads per source.
void AlltoallvMode(benchmark::State& state, const std::string& mode) {
  const int pes = static_cast<int>(state.range(0));
  const size_t per_pair = static_cast<size_t>(state.range(1));
  const size_t chunk = 16 << 10;
  const int reps = 5;
  uint64_t peak_netbuf = 0;
  for (auto _ : state) {
    Cluster::Options options;
    options.num_pes = pes;
    Cluster::Result result = Cluster::Run(options, [&](Comm& comm) {
      std::vector<std::vector<uint64_t>> sends(comm.size());
      for (int d = 0; d < comm.size(); ++d) {
        sends[d].assign(per_pair / 8, comm.rank() * 1000 + d);
      }
      for (int i = 0; i < reps; ++i) {
        if (mode == "stream") {
          uint64_t received_bytes = 0;
          comm.AlltoallvStream(
              [&](int dst) {
                return std::span<const uint8_t>(
                    reinterpret_cast<const uint8_t*>(sends[dst].data()),
                    sends[dst].size() * sizeof(uint64_t));
              },
              [&](int src, std::span<const uint8_t> data, bool last) {
                (void)src;
                (void)last;
                received_bytes += data.size();
              },
              /*on_size=*/nullptr, chunk);
          benchmark::DoNotOptimize(received_bytes);
        } else {
          comm.set_alltoallv_algo(mode == "pairwise"
                                      ? AlltoallAlgo::kPairwise
                                      : AlltoallAlgo::kFullMesh);
          auto recv = comm.Alltoallv<uint64_t>(sends);
          benchmark::DoNotOptimize(recv.size());
        }
      }
    });
    for (const auto& s : result.stats) {
      peak_netbuf = std::max(peak_netbuf, s.recv_buffer_peak_bytes);
    }
  }
  state.counters["peak_netbuf_B"] = static_cast<double>(peak_netbuf);
  state.SetBytesProcessed(state.iterations() * reps * pes *
                          (pes - 1) * per_pair);
}
BENCHMARK_CAPTURE(AlltoallvMode, buffered, "buffered")
    ->Args({4, 256 << 10})->Args({8, 256 << 10})->Iterations(5);
BENCHMARK_CAPTURE(AlltoallvMode, stream, "stream")
    ->Args({4, 256 << 10})->Args({8, 256 << 10})->Iterations(5);
BENCHMARK_CAPTURE(AlltoallvMode, pairwise, "pairwise")
    ->Args({4, 256 << 10})->Args({8, 256 << 10})->Iterations(5);

/// Bulk single-pair bandwidth: one 64 MiB message each way.
void Bandwidth(benchmark::State& state, TransportKind kind) {
  const size_t bytes = 64u << 20;
  for (auto _ : state) {
    RunWith(kind, 2, [&](Comm& comm) {
      std::vector<uint8_t> payload(bytes, 2);
      if (comm.rank() == 0) {
        comm.Send(1, 1, payload.data(), payload.size());
        comm.Recv(1, 2);
      } else {
        comm.Recv(0, 1);
        comm.Send(0, 2, payload.data(), payload.size());
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * 2 * bytes);
}
BENCHMARK_CAPTURE(Bandwidth, inproc, TransportKind::kInProc)->Iterations(5);
BENCHMARK_CAPTURE(Bandwidth, tcp, TransportKind::kTcp)->Iterations(5);

}  // namespace

/// Custom main (overrides benchmark_main's): --alltoallv-mode=<mode> runs
/// only that schedule's comparison benchmark — the CI streaming smoke and
/// the quickest way to A/B one schedule. All other flags pass through to
/// Google Benchmark.
int main(int argc, char** argv) {
  std::vector<char*> args;
  std::string filter_arg;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    const std::string prefix = "--alltoallv-mode=";
    if (arg.rfind(prefix, 0) == 0) {
      std::string mode = arg.substr(prefix.size());
      if (mode != "buffered" && mode != "stream" && mode != "pairwise") {
        std::fprintf(stderr,
                     "unknown --alltoallv-mode '%s' "
                     "(expected buffered|stream|pairwise)\n",
                     mode.c_str());
        return 2;
      }
      filter_arg = "--benchmark_filter=AlltoallvMode/" + mode;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!filter_arg.empty()) args.push_back(filter_arg.data());
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
